package daemon

import (
	"bytes"
	"strings"
	"testing"
)

const sampleYAML = `
# thermostatd sample: redis under the paper's arm with chaos.
app: redis
policy: thermostat
scale: tiny
slowdown_pct: 3
seed: 42
log_format: json
serve: 127.0.0.1:9090

chaos:
  rate: 0.2
  permanent_fraction: 0.5
  seed: 7

telemetry:
  trace: out/trace.json
  metrics: out/metrics.jsonl
  epochs: true

tiers: []

daemon:
  checkpoint_path: out/thermostatd.ckpt
  checkpoint_every_epochs: 4
  epoch_wall_ms: 10
  degrade:
    degrade_after: 2
    quarantine_after: 3
    recover_after: 4
    widen_factor: 4
`

func TestDecodeYAML(t *testing.T) {
	c, err := Decode([]byte(sampleYAML))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if c.App != "redis" || c.Policy != "thermostat" || c.Scale != "tiny" {
		t.Fatalf("wrong identity fields: %+v", c)
	}
	if c.Seed != 42 || c.Chaos.Seed != 7 || c.Chaos.Rate != 0.2 {
		t.Fatalf("wrong seeds/chaos: %+v", c)
	}
	if c.Serve != "127.0.0.1:9090" {
		t.Fatalf("colon-bearing scalar mangled: %q", c.Serve)
	}
	if !c.Telemetry.Epochs || c.Telemetry.Trace != "out/trace.json" {
		t.Fatalf("wrong telemetry: %+v", c.Telemetry)
	}
	if c.Daemon.CheckpointEveryEpochs != 4 || c.Daemon.EpochWallMs != 10 {
		t.Fatalf("wrong lifecycle: %+v", c.Daemon)
	}
	if err := c.ValidateForDaemon(); err != nil {
		t.Fatalf("ValidateForDaemon: %v", err)
	}
}

func TestDecodeJSON(t *testing.T) {
	c, err := Decode([]byte(`{"app": "redis", "scale": "tiny", "chaos": {}, "telemetry": {}, "daemon": {"degrade": {}}}`))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if c.App != "redis" || c.Policy != "thermostat" {
		t.Fatalf("defaults not applied: %+v", c)
	}
}

func TestDecodeDefaults(t *testing.T) {
	c, err := Decode([]byte("app: memcached\n"))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if c.Policy != "thermostat" || c.Scale != "repro" || c.SlowdownPct != 3 ||
		c.Seed != 1 || c.Chaos.Seed != 1 || c.LogFormat != "text" {
		t.Fatalf("defaults: %+v", c)
	}
	if c.Daemon.Degrade.DegradeAfter != 2 || c.Daemon.Degrade.WidenFactor != 4 {
		t.Fatalf("degrade defaults: %+v", c.Daemon.Degrade)
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := []struct{ name, in, want string }{
		{"unknown key", "app: redis\nbogus: 1\n", "unknown field"},
		{"unknown nested key", "chaos:\n  frequency: 1\n", "unknown field"},
		{"duplicate key", "app: redis\napp: memcached\n", "duplicate key"},
		{"type mismatch", "app: 3\n", "cannot unmarshal"},
		{"tab indent", "daemon:\n\tepoch_wall_ms: 1\n", "tab in indentation"},
		{"flow mapping", "chaos: {rate: 1}\n", "not supported"},
		{"multi-doc", "---\napp: redis\n", "not supported"},
		{"bad json", `{"app": `, "parse json"},
		{"json trailing", `{"app": "redis"} {}`, "trailing data"},
		{"top-level list", "- a\n- b\n", "top level must be a mapping"},
		{"negative seed", "seed: -1\n", "cannot unmarshal"},
	}
	for _, tc := range cases {
		if _, err := Decode([]byte(tc.in)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c, err := Decode([]byte(sampleYAML))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	enc := c.Encode()
	c2, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode(Encode): %v", err)
	}
	if !bytes.Equal(enc, c2.Encode()) {
		t.Fatalf("round trip unstable:\n%s\nvs\n%s", enc, c2.Encode())
	}
}

func TestValidateRules(t *testing.T) {
	base := func() Config {
		return Config{App: "redis", Policy: "thermostat", Scale: "tiny", SlowdownPct: 3, IdleWindowS: 10}.Normalize()
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"unknown app", func(c *Config) { c.App = "nope" }, "unknown application"},
		{"unknown policy", func(c *Config) { c.Policy = "nope" }, "unknown policy"},
		{"unknown scale", func(c *Config) { c.Scale = "huge" }, "unknown scale"},
		{"negative duration", func(c *Config) { c.DurationS = -1 }, "negative"},
		{"negative period", func(c *Config) { c.PeriodS = -1 }, "negative"},
		{"bad slowdown", func(c *Config) { c.SlowdownPct = -1 }, "-slowdown"},
		{"chaos range", func(c *Config) { c.Chaos.Rate = 1.5 }, "outside [0, 1]"},
		{"chaos non-migrating", func(c *Config) { c.Policy = "all-dram"; c.Chaos.Rate = 0.1 }, "migrating policy"},
		{"tracker without composition", func(c *Config) { c.Tracker = "damon" }, "composition policy"},
		{"unknown tracker", func(c *Config) { c.Tracker = "nope" }, "unknown tracker"},
		{"tiers non-engine", func(c *Config) { c.Policy = "idle-demote"; c.Tiers = []string{"dram", "nvm"} }, "migrating engine"},
		{"tiers bad preset", func(c *Config) { c.Tiers = []string{"dram", "floppy"} }, "unknown device preset"},
		{"tenants with tiers", func(c *Config) { c.Tenants = []string{"redis"}; c.Tiers = []string{"dram", "nvm"} }, "not supported with -tiers"},
		{"same listener", func(c *Config) { c.Serve = ":9"; c.Pprof = ":9" }, "one listener per address"},
		{"bad log format", func(c *Config) { c.LogFormat = "xml" }, "-log-format"},
		{"negative ckpt cadence", func(c *Config) { c.Daemon.CheckpointEveryEpochs = -1 }, "checkpoint_every_epochs"},
		{"negative degrade", func(c *Config) { c.Daemon.Degrade.DegradeAfter = -1 }, "non-negative"},
	}
	for _, tc := range cases {
		c := base()
		tc.mut(&c)
		err := c.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want substring %q", tc.name, err, tc.want)
		}
		if err != nil && strings.Contains(err.Error(), "\n") {
			t.Errorf("%s: multi-line error %q", tc.name, err)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base config invalid: %v", err)
	}
}

func TestValidateForDaemon(t *testing.T) {
	c := Config{Policy: "thermostat", Scale: "tiny", SlowdownPct: 3}.Normalize()
	if err := c.ValidateForDaemon(); err == nil || !strings.Contains(err.Error(), "needs an app") {
		t.Fatalf("missing app: %v", err)
	}
	c.App = "redis"
	c.Policy = "all-dram"
	if err := c.ValidateForDaemon(); err == nil || !strings.Contains(err.Error(), "no engine") {
		t.Fatalf("non-engine policy: %v", err)
	}
	c.Policy = "threshold"
	c.Tracker = "idlebit"
	if err := c.ValidateForDaemon(); err != nil {
		t.Fatalf("composition should be daemon-runnable: %v", err)
	}
}

func TestDiffReload(t *testing.T) {
	old, err := Decode([]byte(sampleYAML))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	now := old
	now.SlowdownPct = 5
	now.Chaos.Rate = 0.4
	changes, err := DiffReload(old, now)
	if err != nil {
		t.Fatalf("DiffReload: %v", err)
	}
	if len(changes) != 2 {
		t.Fatalf("want 2 changes, got %v", changes)
	}

	if changes, err := DiffReload(old, old); err != nil || len(changes) != 0 {
		t.Fatalf("no-op reload: %v %v", changes, err)
	}

	bad := old
	bad.Seed = 99
	if _, err := DiffReload(old, bad); err == nil || !strings.Contains(err.Error(), "not reloadable") {
		t.Fatalf("structural change should reject: %v", err)
	}

	quiet := old
	quiet.Chaos.Rate = 0
	enabled := old
	if _, err := DiffReload(quiet, enabled); err == nil || !strings.Contains(err.Error(), "cannot be enabled") {
		t.Fatalf("chaos enable should reject: %v", err)
	}
	if _, err := DiffReload(enabled, quiet); err != nil {
		t.Fatalf("chaos disable should be allowed: %v", err)
	}
}
