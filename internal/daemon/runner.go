package daemon

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"thermostat/internal/cgroup"
	"thermostat/internal/chaos"
	"thermostat/internal/core"
	"thermostat/internal/harness"
	"thermostat/internal/mem"
	"thermostat/internal/obsv"
	"thermostat/internal/sim"
	"thermostat/internal/telemetry"
	"thermostat/internal/workload"
)

// ErrSimulatedCrash is returned by Run when CrashAfterEpoch fires: the run
// stops dead at that epoch boundary with no telemetry flush, exactly as a
// kill -9 would leave things on disk (the last checkpoint survives, the
// exports do not). The checkpoint/restore bit-identity test uses it to
// "crash" in-process.
var ErrSimulatedCrash = errors.New("daemon: simulated crash")

// ErrHalted is returned by Run when the degradation ladder reaches Halted:
// the run was stopped at an epoch boundary and telemetry was flushed, but
// the outcome is a deliberate failure, not a completion.
var ErrHalted = errors.New("daemon: halted by degradation ladder")

// Runner owns one supervised simulation run: it assembles the machine,
// app, and engine from a Config, drives the run with a deterministic tick
// hook (reload timeline, degradation ladder, checkpoints, pacing), and
// flushes telemetry on every exit path. Configure the exported fields, then
// call Run once; Reload and Stop are safe from other goroutines for the
// duration.
type Runner struct {
	// Config is the starting configuration (must pass ValidateForDaemon).
	Config Config
	// Logger receives lifecycle and health transitions (nil = discard).
	Logger *slog.Logger
	// Publisher, when set, mirrors the run for the observability server
	// and carries the /status health field.
	Publisher *obsv.Publisher
	// Timeline is a preloaded reload journal: each entry's Config is
	// applied at the first epoch boundary with virtual time >=
	// ApplyAtNs. A cold start fed a live run's journal replays its
	// reloads bit-identically; a restore replays its own.
	Timeline []TimelineEntry
	// Restore resumes from a checkpoint: the run replays from the seed
	// with the checkpoint's journal preloaded (pacing and checkpoint
	// writes suppressed), verifies the state digest at SavedAtEpoch, and
	// then continues live. The caller must set Config and Timeline from
	// the checkpoint (see cmd/thermostatd).
	Restore *Checkpoint
	// NoPacing ignores daemon.epoch_wall_ms (tests and batch replays).
	NoPacing bool
	// CrashAfterEpoch, when > 0, simulates a kill -9 at that epoch
	// boundary (after any due checkpoint write): Run returns
	// ErrSimulatedCrash without flushing exports. Test hook.
	CrashAfterEpoch uint64

	mu      sync.Mutex
	cfg     Config  // current effective config (base + applied reloads)
	pending *Config // latest posted reload, coalesced until the next epoch
	stopReq bool
	health  Health
	epoch   uint64
	journal []TimelineEntry // applied reload entries, in order

	col *telemetry.Collector // survives panics for the flush path
}

// RunOutcome is everything a completed (or stopped, or halted) run yields.
type RunOutcome struct {
	Result    *sim.RunResult
	Machine   *sim.Machine
	Engine    *core.Engine
	Collector *telemetry.Collector
	// Config is the effective configuration at run end.
	Config Config
	// Timeline is the applied reload journal (preloaded + live entries).
	Timeline []TimelineEntry
	// Epochs is the number of completed policy ticks.
	Epochs uint64
	// Health is the final ladder position.
	Health Health
}

// runState bundles the live simulation objects the tick hook manipulates.
type runState struct {
	sc     harness.Scale
	m      *sim.Machine
	eng    *core.Engine
	group  *cgroup.Group
	shed   *shedRecorder
	ladder *ladder

	basePeriodNs int64
	preload      []TimelineEntry // unapplied timeline entries, in order
	replaying    bool            // restoring: suppress pacing/checkpoints/reloads
	halted       bool
	crashed      bool
	lastFaults   uint64 // chaos activity total at the previous epoch
}

// Reload validates next and queues it for the coming epoch boundary.
// Returns the permitted changes (empty = no-op, nothing queued). Structural
// changes and chaos enablement reject the whole reload. Safe to call from
// signal handlers and HTTP handlers while Run is in flight.
func (r *Runner) Reload(next Config) ([]string, error) {
	if err := next.ValidateForDaemon(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.cfg
	if r.pending != nil {
		cur = *r.pending // diff against the latest queued state
	}
	changes, err := DiffReload(cur, next)
	if err != nil {
		return nil, err
	}
	if len(changes) == 0 {
		return nil, nil
	}
	r.pending = &next
	return changes, nil
}

// Stop requests a graceful stop: the run ends cleanly at the next epoch
// boundary, telemetry is flushed, and Run returns a nil error.
func (r *Runner) Stop() {
	r.mu.Lock()
	r.stopReq = true
	r.mu.Unlock()
}

// Health returns the current ladder position.
func (r *Runner) Health() Health {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.health
}

// EffectiveConfig returns the current configuration (base + applied
// reloads).
func (r *Runner) EffectiveConfig() Config {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg
}

// Journal returns a copy of the applied reload timeline so far.
func (r *Runner) Journal() []TimelineEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]TimelineEntry(nil), r.journal...)
}

// Epoch returns the number of completed policy ticks.
func (r *Runner) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// Run executes the configured simulation to completion under supervision:
// a panic in the run is recovered, logged with a stack, and converted into
// a nonzero-exit error after telemetry has been flushed. Telemetry exports
// (telemetry.trace / telemetry.metrics) are written on every exit path —
// completion, graceful stop, halt, abort, panic — except a simulated
// crash. Run may be called once per Runner.
func (r *Runner) Run() (*RunOutcome, error) {
	out, err := r.runSupervised()
	if errors.Is(err, ErrSimulatedCrash) {
		return out, err // a real kill -9 flushes nothing; neither do we
	}
	if werr := r.writeExports(); werr != nil && err == nil {
		err = werr
	}
	if err == nil && out != nil && out.Health == Halted {
		err = ErrHalted
	}
	return out, err
}

// runSupervised is Run's panic boundary.
func (r *Runner) runSupervised() (out *RunOutcome, err error) {
	defer func() {
		if p := recover(); p != nil {
			r.logger().Error("run panicked", "panic", p, "stack", string(debug.Stack()))
			out, err = nil, fmt.Errorf("daemon: run panicked: %v", p)
		}
	}()
	return r.run()
}

func (r *Runner) run() (*RunOutcome, error) {
	cfg := r.Config.Normalize()
	if err := cfg.ValidateForDaemon(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.cfg = cfg
	r.journal = nil
	r.health = Healthy
	r.epoch = 0
	r.mu.Unlock()

	rs, app, err := r.assemble(cfg)
	if err != nil {
		return nil, err
	}
	r.setPublishedHealth(Healthy)

	rc := sim.RunConfig{
		DurationNs: rs.sc.DurationNs,
		WarmupNs:   rs.sc.WarmupNs,
		WindowNs:   rs.sc.PeriodNs,
		TickHook:   func(now int64) error { return r.tick(rs, now) },
	}
	res, err := sim.Run(rs.m, app, rs.eng, rc)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	finalCfg := r.cfg
	finalHealth := r.health
	epochs := r.epoch
	journal := append([]TimelineEntry(nil), r.journal...)
	r.mu.Unlock()
	out := &RunOutcome{
		Result: res, Machine: rs.m, Engine: rs.eng, Collector: r.col,
		Config: finalCfg, Timeline: journal, Epochs: epochs, Health: finalHealth,
	}
	if rs.crashed {
		return out, ErrSimulatedCrash
	}
	// A run that completed (rather than halting) has no further use for its
	// checkpoint; leaving it would make the next start "restore" a finished
	// run.
	if !rs.halted && finalCfg.Daemon.CheckpointPath != "" {
		removeCheckpoint(finalCfg.Daemon.CheckpointPath)
	}
	return out, nil
}

// assemble builds the machine, app, engine and telemetry chain from cfg,
// mirroring the CLI harness assembly exactly (same seeds, same order) so a
// daemon run of a config is bit-identical to the equivalent CLI run.
func (r *Runner) assemble(cfg Config) (*runState, sim.App, error) {
	spec, _ := workload.ByName(cfg.App) // vetted by ValidateForDaemon
	if cfg.Footprint != "" {
		target, _ := workload.ParseSize(cfg.Footprint) // vetted
		spec = spec.WithFootprint(target)
	}
	var sc harness.Scale
	switch cfg.Scale {
	case "tiny":
		sc = harness.Tiny()
	case "bench":
		sc = harness.Bench()
	default:
		sc = harness.Repro()
	}
	sc.Seed = cfg.Seed
	sc.Sparse = cfg.Sparse
	sc.ShardWorkers = cfg.ShardWorkers
	if cfg.DurationS > 0 {
		sc.DurationNs = int64(cfg.DurationS * 1e9)
		if sc.WarmupNs >= sc.DurationNs {
			sc.WarmupNs = sc.DurationNs / 5
		}
	}
	if cfg.PeriodS > 0 {
		sc.PeriodNs = int64(cfg.PeriodS * 1e9)
	}
	if err := sc.Validate(); err != nil {
		return nil, nil, err
	}

	var simCfg sim.Config
	if len(cfg.Tiers) > 0 {
		var tiers []mem.Spec
		for _, name := range cfg.Tiers {
			t, _ := mem.Preset(strings.TrimSpace(name), 0) // vetted
			tiers = append(tiers, t)
		}
		simCfg = sc.TieredMachineConfig(spec, tiers)
	} else {
		simCfg = sc.MachineConfig(spec, true)
	}
	if cfg.Chaos.Rate > 0 {
		simCfg.Chaos = chaos.Config{
			Seed: cfg.Chaos.Seed, Rate: cfg.Chaos.Rate,
			PermanentFraction: cfg.Chaos.PermanentFraction,
		}
	}

	// The daemon always collects telemetry (bounded ring), so a reload can
	// turn on exports mid-run and the crash-flush path always has data.
	r.col = telemetry.NewCollector()
	label := cfg.App + "/" + cfg.Policy
	var inner telemetry.Recorder = r.col
	if r.Publisher != nil {
		inner = r.Publisher.Recorder(label, r.col)
	}
	shed := &shedRecorder{inner: inner}
	simCfg.Recorder = shed

	m, err := sim.New(simCfg)
	if err != nil {
		return nil, nil, err
	}
	app, err := sc.NewApp(spec, sc.Seed)
	if err != nil {
		return nil, nil, err
	}
	g, err := sc.Group(cfg.SlowdownPct)
	if err != nil {
		return nil, nil, err
	}
	var eng *core.Engine
	if cfg.Policy == "thermostat" {
		eng = core.NewEngine(g, sc.Seed+0x7e)
	} else {
		tracker := cfg.Tracker
		if tracker == "" {
			tracker = "poison"
		}
		eng, err = core.ComposeByName(g, tracker, cfg.Policy, sc.Seed+0x7e)
		if err != nil {
			return nil, nil, err
		}
	}
	if sc.ShardWorkers > 1 {
		eng.SetSharding(sc.ShardWorkers, sc.ShardWorkers)
	}
	if r.Publisher != nil {
		eng.EnablePublish()
		r.Publisher.AttachEngine(label, eng)
	}

	rs := &runState{
		sc: sc, m: m, eng: eng, group: g, shed: shed,
		ladder:       &ladder{cfg: cfg.Daemon.Degrade},
		basePeriodNs: sc.PeriodNs,
		preload:      append([]TimelineEntry(nil), r.Timeline...),
		replaying:    r.Restore != nil,
	}
	return rs, app, nil
}

// tick is the deterministic control point, called by sim.Run after every
// policy tick on the simulation goroutine. Everything that can change the
// run — reload application, ladder transitions, checkpoints, stop — lands
// here, at an epoch boundary in virtual time.
func (r *Runner) tick(rs *runState, now int64) error {
	r.mu.Lock()
	r.epoch++
	epoch := r.epoch
	r.mu.Unlock()

	// Preloaded journal entries first (cold-start differential, restore
	// replay): due when the run reaches their virtual timestamp.
	for len(rs.preload) > 0 && now >= rs.preload[0].ApplyAtNs {
		e := rs.preload[0]
		rs.preload = rs.preload[1:]
		r.applyEntry(rs, e, false)
	}
	// Then live reloads, stamped with this boundary's virtual time so the
	// journal replays them at exactly this tick. Held during replay: the
	// preloaded journal owns the timeline until the restore point passes.
	if !rs.replaying {
		r.mu.Lock()
		p := r.pending
		r.pending = nil
		r.mu.Unlock()
		if p != nil {
			r.applyEntry(rs, TimelineEntry{ApplyAtNs: now, Epoch: epoch, Config: *p}, true)
		}
	}

	// One epoch verdict for the ladder: did chaos activity grow? A frozen
	// engine migrates nothing and so can inject nothing — in
	// quarantine-only the verdict instead asks whether quarantine pressure
	// persists (sentences still running), which is what decides between
	// climbing back and halting.
	rep := rs.eng.FaultReport()
	activity := rep.Injected + rep.RolledBack + rep.Quarantined
	faulty := activity > rs.lastFaults
	rs.lastFaults = activity
	if !faulty && rs.ladder.health == QuarantineOnly {
		faulty = rs.eng.ActiveQuarantinedPages() > 0
	}
	if h, changed := rs.ladder.Observe(faulty); changed {
		r.transition(rs, h, epoch, now)
	}

	// Restore point: prove the replayed state is the checkpointed state.
	if rs.replaying && epoch == r.Restore.SavedAtEpoch {
		got := stateDigest(epoch, now, rs.m, rs.eng, r.col.EventCount())
		if got != r.Restore.Digest {
			return fmt.Errorf("daemon: restore diverged at epoch %d: digest %s, checkpoint has %s",
				epoch, got, r.Restore.Digest)
		}
		rs.replaying = false
		r.logger().Info("restored from checkpoint",
			"epoch", epoch, "virtual_ns", now, "digest", got)
	}

	r.mu.Lock()
	cfg := r.cfg
	stop := r.stopReq
	r.mu.Unlock()

	if !rs.replaying && cfg.Daemon.CheckpointPath != "" &&
		cfg.Daemon.CheckpointEveryEpochs > 0 && epoch%uint64(cfg.Daemon.CheckpointEveryEpochs) == 0 {
		cp := &Checkpoint{
			Version: checkpointVersion, SavedAtEpoch: epoch, VirtualNs: now,
			Digest: stateDigest(epoch, now, rs.m, rs.eng, r.col.EventCount()),
			Config: r.Config.Normalize(), Timeline: r.Journal(),
		}
		if err := WriteCheckpoint(cfg.Daemon.CheckpointPath, cp); err != nil {
			r.logger().Error("checkpoint failed", "err", err)
		}
	}

	if r.CrashAfterEpoch > 0 && epoch >= r.CrashAfterEpoch {
		rs.crashed = true
		return sim.ErrStopRun
	}
	if rs.halted {
		return sim.ErrStopRun
	}
	if stop {
		r.logger().Info("graceful stop at epoch boundary", "epoch", epoch, "virtual_ns", now)
		return sim.ErrStopRun
	}
	if !rs.replaying && !r.NoPacing && cfg.Daemon.EpochWallMs > 0 {
		time.Sleep(time.Duration(cfg.Daemon.EpochWallMs) * time.Millisecond)
	}
	return nil
}

// applyEntry applies one reload at an epoch boundary and journals it. A
// live entry that no longer diffs cleanly (cannot happen for preloaded
// journals, which were validated when written) is logged and skipped, so a
// bad reload never half-applies.
func (r *Runner) applyEntry(rs *runState, e TimelineEntry, live bool) {
	r.mu.Lock()
	old := r.cfg
	r.mu.Unlock()
	next := e.Config.Normalize()
	changes, err := DiffReload(old, next)
	if err != nil {
		r.logger().Error("reload rejected at apply", "err", err, "live", live)
		return
	}
	if len(changes) == 0 {
		return
	}
	r.mu.Lock()
	r.cfg = next
	r.journal = append(r.journal, TimelineEntry{ApplyAtNs: e.ApplyAtNs, Epoch: e.Epoch, Config: next})
	r.mu.Unlock()

	if next.SlowdownPct != old.SlowdownPct {
		if err := rs.group.SetTolerableSlowdown(next.SlowdownPct); err != nil {
			r.logger().Error("reload: slowdown retune failed", "err", err)
		}
	}
	if next.PeriodS != old.PeriodS {
		rs.basePeriodNs = rs.sc.PeriodNs
		if next.PeriodS > 0 {
			rs.basePeriodNs = int64(next.PeriodS * 1e9)
		}
	}
	if next.Chaos != old.Chaos {
		rs.m.Injector().SetRates(next.Chaos.Rate, next.Chaos.PermanentFraction)
	}
	rs.ladder.cfg = next.Daemon.Degrade
	// Interval effects (period change, widen-factor change) share one
	// application path; it is idempotent, so reapply unconditionally.
	r.applyInterval(rs)

	r.logger().Info("config reloaded", "epoch", e.Epoch, "virtual_ns", e.ApplyAtNs,
		"changes", strings.Join(changes, "; "), "live", live)
}

// transition applies one ladder move: widen or restore the scan interval,
// shed or restore telemetry, freeze or thaw the engine, and log it. All on
// the simulation goroutine at an epoch boundary.
func (r *Runner) transition(rs *runState, h Health, epoch uint64, now int64) {
	r.mu.Lock()
	from := r.health
	r.health = h
	r.mu.Unlock()
	rs.shed.shed = h >= Degraded
	rs.eng.SetFrozen(h >= QuarantineOnly)
	if h == Halted {
		rs.halted = true
	}
	r.applyInterval(rs)
	r.setPublishedHealth(h)
	r.logger().Warn("health transition",
		"from", from.String(), "to", h.String(), "epoch", epoch, "virtual_ns", now)
}

// applyInterval installs the effective scan interval: the base period,
// widened while the ladder sits below healthy.
func (r *Runner) applyInterval(rs *runState) {
	r.mu.Lock()
	h := r.health
	widen := r.cfg.Daemon.Degrade.WidenFactor
	r.mu.Unlock()
	effective := rs.basePeriodNs
	if h >= Degraded && h < Halted && widen > 1 {
		effective *= widen
	}
	p := rs.group.Params()
	if p.SamplePeriodNs == effective {
		return
	}
	p.SamplePeriodNs = effective
	if err := rs.group.Update(p); err != nil {
		r.logger().Error("scan interval retune failed", "err", err)
	}
}

// writeExports flushes the collector to the configured telemetry sinks.
func (r *Runner) writeExports() error {
	r.mu.Lock()
	t := r.cfg.Telemetry
	r.mu.Unlock()
	col := r.col
	if col == nil {
		return nil
	}
	if t.Trace != "" {
		if err := writeFileTo(t.Trace, col.WriteChromeTrace); err != nil {
			return fmt.Errorf("daemon: write trace: %w", err)
		}
		r.logger().Info("wrote Chrome trace", "path", t.Trace)
	}
	if t.Metrics != "" {
		if err := writeFileTo(t.Metrics, col.WriteJSONL); err != nil {
			return fmt.Errorf("daemon: write metrics: %w", err)
		}
		r.logger().Info("wrote per-epoch metrics", "path", t.Metrics)
	}
	return nil
}

func (r *Runner) logger() *slog.Logger {
	if r.Logger != nil {
		return r.Logger
	}
	return discardLogger
}

func (r *Runner) setPublishedHealth(h Health) {
	if r.Publisher != nil {
		r.Publisher.SetHealth(h.String())
	}
}

// discardLogger swallows records when no Logger was configured.
var discardLogger = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 4}))

// writeFileTo creates path and streams write into it.
func writeFileTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// removeCheckpoint deletes a completed run's checkpoint, ignoring a file
// that was never written.
func removeCheckpoint(path string) {
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		// Best-effort: a stale checkpoint only costs a failed restore later.
		_ = err
	}
}
