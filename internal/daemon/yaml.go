// A minimal YAML-subset parser for config files. The repo is dependency-free
// (go.mod lists nothing), so rather than vendor a YAML library this
// implements exactly the subset the sample configs need: nested mappings by
// indentation, "- item" scalar lists, quoted and plain scalars with the
// usual typings (bool, int, float, null), and '#' comments. Flow
// collections, anchors, multi-document streams, block scalars and other
// YAML arcana are rejected with a line-numbered error. The output is the
// generic map form that feeds the strict JSON decoder in Decode, so unknown
// and mistyped keys are caught there with field names attached.

package daemon

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// maxYAMLDepth bounds block nesting so hostile input (FuzzDaemonConfig)
// cannot recurse the parser off the stack. Real configs nest 3 deep.
const maxYAMLDepth = 32

type yamlLine struct {
	indent int
	text   string // content with indentation stripped, comments removed
	num    int    // 1-based source line
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// parseYAML parses the subset into map[string]any / []any / scalars.
// An input that is only comments and blank lines parses as an empty map.
func parseYAML(data []byte) (any, error) {
	lines, err := splitYAMLLines(data)
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return map[string]any{}, nil
	}
	p := &yamlParser{lines: lines}
	v, err := p.block(lines[0].indent, 0)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("line %d: unexpected indentation", l.num)
	}
	return v, nil
}

// splitYAMLLines strips comments and blank lines and records indentation.
func splitYAMLLines(data []byte) ([]yamlLine, error) {
	var out []yamlLine
	for i, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSuffix(raw, "\r")
		body := stripComment(line)
		trimmed := strings.TrimRight(body, " \t")
		indent := 0
		for indent < len(trimmed) && trimmed[indent] == ' ' {
			indent++
		}
		text := trimmed[indent:]
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "\t") {
			return nil, fmt.Errorf("line %d: tab in indentation (use spaces)", i+1)
		}
		if text == "---" || text == "..." {
			return nil, fmt.Errorf("line %d: multi-document streams are not supported", i+1)
		}
		out = append(out, yamlLine{indent: indent, text: text, num: i + 1})
	}
	return out, nil
}

// stripComment removes a trailing '# ...' comment, honouring quotes: a '#'
// inside single or double quotes is literal, and only a '#' at the start of
// the line or preceded by whitespace opens a comment (so plain scalars like
// sha#1 survive, matching YAML).
func stripComment(line string) string {
	var inS, inD bool
	for i := 0; i < len(line); i++ {
		switch c := line[i]; {
		case c == '\'' && !inD:
			inS = !inS
		case c == '"' && !inS:
			inD = !inD
		case c == '#' && !inS && !inD:
			if i == 0 || line[i-1] == ' ' || line[i-1] == '\t' {
				return line[:i]
			}
		}
	}
	return line
}

// block parses the run of lines at exactly `indent` as one mapping or list.
func (p *yamlParser) block(indent, depth int) (any, error) {
	if depth > maxYAMLDepth {
		return nil, fmt.Errorf("line %d: nesting deeper than %d levels", p.lines[p.pos].num, maxYAMLDepth)
	}
	if p.isListItem() {
		return p.list(indent)
	}
	return p.mapping(indent, depth)
}

func (p *yamlParser) isListItem() bool {
	t := p.lines[p.pos].text
	return t == "-" || strings.HasPrefix(t, "- ")
}

func (p *yamlParser) mapping(indent, depth int) (any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("line %d: unexpected indentation", l.num)
		}
		if p.isListItem() {
			return nil, fmt.Errorf("line %d: list item inside a mapping", l.num)
		}
		key, rest, err := splitKey(l)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key %q", l.num, key)
		}
		p.pos++
		switch {
		case rest != "":
			v, err := yamlScalar(rest, l.num)
			if err != nil {
				return nil, err
			}
			m[key] = v
		case p.pos < len(p.lines) && p.lines[p.pos].indent > indent:
			v, err := p.block(p.lines[p.pos].indent, depth+1)
			if err != nil {
				return nil, err
			}
			m[key] = v
		default:
			m[key] = nil
		}
	}
	return m, nil
}

func (p *yamlParser) list(indent int) (any, error) {
	out := []any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("line %d: unexpected indentation", l.num)
		}
		if !p.isListItem() {
			return nil, fmt.Errorf("line %d: expected a \"- item\" list entry", l.num)
		}
		if l.text == "-" {
			return nil, fmt.Errorf("line %d: nested blocks under \"-\" are not supported; use \"- value\"", l.num)
		}
		v, err := yamlScalar(strings.TrimSpace(l.text[2:]), l.num)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		p.pos++
	}
	return out, nil
}

// splitKey splits "key: value" / "key:" at the first ':' that is followed
// by a space or ends the line (so scalar values like addresses keep their
// colons — they only appear on the value side).
func splitKey(l yamlLine) (key, rest string, err error) {
	t := l.text
	for i := 0; i < len(t); i++ {
		if t[i] != ':' {
			continue
		}
		if i+1 == len(t) || t[i+1] == ' ' {
			key = strings.TrimSpace(t[:i])
			rest = strings.TrimSpace(t[i+1:])
			if key == "" {
				return "", "", fmt.Errorf("line %d: empty key", l.num)
			}
			k, err := unquoteKey(key, l.num)
			if err != nil {
				return "", "", err
			}
			return k, rest, nil
		}
	}
	return "", "", fmt.Errorf("line %d: expected \"key: value\"", l.num)
}

func unquoteKey(key string, num int) (string, error) {
	if len(key) >= 2 && (key[0] == '"' || key[0] == '\'') {
		v, err := yamlScalar(key, num)
		if err != nil {
			return "", err
		}
		s, ok := v.(string)
		if !ok {
			return "", fmt.Errorf("line %d: bad quoted key", num)
		}
		return s, nil
	}
	return key, nil
}

// yamlScalar types a scalar token: quoted strings, booleans, null, integers
// (int64, falling back to uint64 for large seeds), finite floats, and
// otherwise the literal string. NaN/Inf stay strings so the JSON bridge
// never sees an unmarshalable value.
func yamlScalar(s string, num int) (any, error) {
	switch {
	case len(s) >= 1 && s[0] == '"':
		v, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad double-quoted scalar %s", num, s)
		}
		return v, nil
	case len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'':
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	case len(s) >= 1 && s[0] == '\'':
		return nil, fmt.Errorf("line %d: unterminated single-quoted scalar", num)
	case s == "[]":
		return []any{}, nil
	case s == "{}":
		return map[string]any{}, nil
	case len(s) > 0 && (s[0] == '[' || s[0] == '{' || s[0] == '&' || s[0] == '*' || s[0] == '|' || s[0] == '>'):
		return nil, fmt.Errorf("line %d: flow collections, anchors and block scalars are not supported", num)
	}
	switch s {
	case "true", "True":
		return true, nil
	case "false", "False":
		return false, nil
	case "null", "Null", "~", "":
		return nil, nil
	}
	if i, err := strconv.ParseInt(s, 0, 64); err == nil {
		return i, nil
	}
	if u, err := strconv.ParseUint(s, 0, 64); err == nil {
		return u, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil && !math.IsNaN(f) && !math.IsInf(f, 0) {
		return f, nil
	}
	return s, nil
}
