package daemon

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"

	"thermostat/internal/core"
	"thermostat/internal/sim"
)

// checkpointVersion guards the snapshot format; a restore from a different
// version is rejected rather than misread.
const checkpointVersion = 1

// TimelineEntry is one applied configuration change, stamped with the
// virtual time and epoch of the tick boundary it took effect at. The
// timeline is the daemon's reload journal: a cold start fed the same
// timeline applies the same changes at the same virtual instants, making a
// live SIGHUP byte-identical to a scripted one (the differential test's
// contract), and a restore replays the journal to reconstruct state.
type TimelineEntry struct {
	ApplyAtNs int64  `json:"apply_at_ns"`
	Epoch     uint64 `json:"epoch"`
	Config    Config `json:"config"`
}

// Checkpoint is the crash-safety snapshot. Rather than serializing page
// tables, TLBs and tracker pipelines, it captures the run's deterministic
// closure — the start config, the reload timeline, and how far the run got
// — plus a digest of the live state at that epoch. A restore re-runs the
// seeded simulation from scratch with the journal preloaded, verifies the
// digest when it reaches SavedAtEpoch (proving the replayed state is the
// state that was checkpointed), and continues as the live run. Replay costs
// wall time but no fidelity: this is the same trick as write-ahead-log
// recovery, with the "log" being the seed plus the config timeline.
type Checkpoint struct {
	Version      int             `json:"version"`
	SavedAtEpoch uint64          `json:"saved_at_epoch"`
	VirtualNs    int64           `json:"virtual_ns"`
	Digest       string          `json:"digest"`
	Config       Config          `json:"config"`
	Timeline     []TimelineEntry `json:"timeline,omitempty"`
}

// stateDigest fingerprints the simulation at an epoch boundary: virtual
// clock, machine counters, engine counters, fault handling, and the
// telemetry event count. Every input is deterministic in virtual time, so
// equal digests at equal epochs mean the replay walked the same state.
func stateDigest(epoch uint64, now int64, m *sim.Machine, eng *core.Engine, events int) string {
	h := fnv.New64a()
	mm := m.Metrics()
	st := eng.Stats()
	fr := eng.FaultReport()
	fmt.Fprintf(h, "%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d|%d",
		epoch, now,
		mm.Accesses, mm.SlowAccesses, mm.PoisonFaults, mm.MigrationBytes,
		st.Periods, st.Sampled, st.Demotions, st.Promotions, st.Retries, st.Quarantined,
		fr.Injected, fr.Permanent, fr.RolledBack,
		m.Clock(), eng.QuarantinedPages(), events)
	return fmt.Sprintf("%016x", h.Sum64())
}

// WriteCheckpoint atomically persists cp at path: the snapshot is written
// to a temp file in the same directory, synced, and renamed over the
// destination, so a crash mid-write leaves either the old checkpoint or
// the new one, never a torn file.
func WriteCheckpoint(path string, cp *Checkpoint) error {
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return fmt.Errorf("daemon: encode checkpoint: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("daemon: checkpoint temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("daemon: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("daemon: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("daemon: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("daemon: commit checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpoint loads and sanity-checks a checkpoint file. A missing file
// returns (nil, nil): starting fresh is the normal case, not an error.
func ReadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("daemon: read checkpoint: %w", err)
	}
	var cp Checkpoint
	if err := strictUnmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("daemon: parse checkpoint %s: %w", path, err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("daemon: checkpoint %s has version %d, want %d", path, cp.Version, checkpointVersion)
	}
	if cp.SavedAtEpoch == 0 || cp.Digest == "" {
		return nil, fmt.Errorf("daemon: checkpoint %s is incomplete", path)
	}
	if err := cp.Config.ValidateForDaemon(); err != nil {
		return nil, fmt.Errorf("daemon: checkpoint %s config: %w", path, err)
	}
	return &cp, nil
}
