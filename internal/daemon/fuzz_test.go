package daemon

import (
	"bytes"
	"testing"
)

// FuzzDaemonConfig feeds arbitrary bytes through the config pipeline:
// Decode must never panic, a rejected document must be rejected
// identically on a second attempt (deterministic parse errors), and any
// accepted document must survive the Encode → Decode round trip exactly —
// the property the checkpoint format and the -check output rely on.
// Validate runs on every accepted config purely to prove it cannot panic;
// whether it accepts is input-dependent.
func FuzzDaemonConfig(f *testing.F) {
	f.Add([]byte("app: redis\npolicy: thermostat\nslowdown_pct: 3\n"))
	f.Add([]byte(`{"app":"redis","chaos":{"rate":0.5},"daemon":{"degrade":{"halt_after":2}}}`))
	f.Add([]byte("app: \"quoted\"\ntiers:\n  - dram\n  - cxl\n"))
	f.Add([]byte("# only a comment\n"))
	f.Add([]byte("\tapp: tab-indented\n"))
	f.Add([]byte("{\"app\":\"x\"} trailing"))
	f.Add([]byte("a: 1\na: 2\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data)
		if err != nil {
			// Rejections must be stable: same bytes, same verdict.
			if _, err2 := Decode(data); err2 == nil {
				t.Fatalf("nondeterministic reject: first %v, second nil", err)
			}
			return
		}
		_ = c.Validate() // must not panic; acceptance is input-dependent

		// Accepted documents round-trip exactly through the normalized
		// encoding (Decode applies Normalize, so Encode is a fixed point).
		enc := c.Encode()
		c2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of encoded config failed: %v\nencoded:\n%s", err, enc)
		}
		enc2 := c2.Encode()
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode not a fixed point:\nfirst:\n%s\nsecond:\n%s", enc, enc2)
		}
	})
}
