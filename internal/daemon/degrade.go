package daemon

import "thermostat/internal/telemetry"

// Health is the daemon's position on the graceful-degradation ladder.
// The ladder replaces "retry until quarantine, then shrug" with bounded,
// observable backpressure: each rung sheds a class of work, and hysteresis
// (RecoverAfter ≫ DegradeAfter by default) keeps a flapping fault source
// from bouncing the daemon between rungs every epoch.
type Health int

const (
	// Healthy: full operation.
	Healthy Health = iota
	// Degraded: scan intervals widened by WidenFactor and fine-grained
	// telemetry events shed, trading fidelity for reduced daemon work
	// while faults persist. Migrations still run.
	Degraded
	// QuarantineOnly: the engine is frozen — tracking continues so
	// recovery has fresh estimates, but no new migrations start. Pages
	// already quarantined serve out their sentences.
	QuarantineOnly
	// Halted: the run is stopped at an epoch boundary; telemetry is
	// flushed and the daemon exits nonzero. Terminal.
	Halted
)

// String returns the health name used in /status, slog and the gate script.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case QuarantineOnly:
		return "quarantine-only"
	case Halted:
		return "halted"
	}
	return "unknown"
}

// ladder is the degradation state machine. It is driven once per epoch with
// a single bit — did chaos activity grow this epoch? (in quarantine-only,
// where a frozen engine cannot fault: does quarantine pressure persist?) —
// and is therefore a pure function of the epoch fault sequence: a replayed
// run walks the same rungs at the same epochs, which the checkpoint digest
// and the reload-vs-cold-start differential test rely on.
type ladder struct {
	cfg    DegradeConfig
	health Health
	faulty int // consecutive faulty epochs at the current rung
	clean  int // consecutive clean epochs at the current rung
}

// Observe feeds one epoch's verdict and returns the (possibly new) health
// plus whether a transition happened. Counters reset on every transition
// and whenever the epoch kind flips, so each rung demands a fresh
// consecutive streak.
func (l *ladder) Observe(faultyEpoch bool) (Health, bool) {
	if l.cfg.Disabled || l.health == Halted {
		return l.health, false
	}
	if faultyEpoch {
		l.clean = 0
		l.faulty++
		var threshold int
		switch l.health {
		case Healthy:
			threshold = l.cfg.DegradeAfter
		case Degraded:
			threshold = l.cfg.QuarantineAfter
		case QuarantineOnly:
			threshold = l.cfg.HaltAfter // 0 = never halt
		}
		if threshold > 0 && l.faulty >= threshold {
			l.health++
			l.faulty, l.clean = 0, 0
			return l.health, true
		}
		return l.health, false
	}
	l.faulty = 0
	if l.health == Healthy {
		return l.health, false
	}
	l.clean++
	if l.cfg.RecoverAfter > 0 && l.clean >= l.cfg.RecoverAfter {
		l.health--
		l.faulty, l.clean = 0, 0
		return l.health, true
	}
	return l.health, false
}

// shedRecorder sits between the simulation and the run's telemetry chain.
// While the ladder sits below healthy it drops the high-volume decision
// events (samples, classifications, migrations, splits) but keeps the
// epoch brackets and chaos faults, so exports stay epoch-complete and the
// fault story stays visible while the daemon sheds load. The shed bit is
// flipped only from the tick hook — the same goroutine that records — so
// no locking is needed, and because ladder transitions are deterministic
// in virtual time, shedding is too.
type shedRecorder struct {
	inner telemetry.Recorder
	shed  bool
}

func (s *shedRecorder) Event(e telemetry.Event) {
	if s.shed {
		switch e.Kind {
		case telemetry.KindEpochStart, telemetry.KindEpochEnd, telemetry.KindChaosFault:
		default:
			return
		}
	}
	s.inner.Event(e)
}

func (s *shedRecorder) Snapshot(snap telemetry.Snapshot) { s.inner.Snapshot(snap) }
