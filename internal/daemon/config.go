// Package daemon is the write-side robustness shell around the simulator:
// a strict config layer shared with the CLIs, deterministic hot-reload of a
// running simulation (config changes become timestamped events in the
// seeded virtual-time stream), a graceful-degradation ladder wired to the
// chaos engine's quarantine reports, and crash-safe checkpoint/restore.
// cmd/thermostatd is the supervised long-running entry point; see DESIGN.md
// "Daemon lifecycle" for the determinism contract.
package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"thermostat/internal/core"
	"thermostat/internal/mem"
	"thermostat/internal/obsv"
	"thermostat/internal/workload"
)

// Config selects everything one run needs: the workload, the tracker ×
// policy composition, scale and schedule, chaos injection, telemetry sinks,
// observability listeners, and the daemon lifecycle knobs. Keys mirror the
// CLI flags (config files use snake_case); the zero value of most fields
// means "use the default" and Normalize fills them in. Config doubles as
// the shared validator for cmd/thermostat-sim and cmd/repro: their flag
// sets map onto this struct and Validate holds the one copy of the rules.
type Config struct {
	// App is the application model (see thermostat-sim -list).
	App string `json:"app,omitempty"`
	// Apps is cmd/repro's extra model list; thermostatd runs exactly one.
	Apps []string `json:"apps,omitempty"`
	// Policy is "thermostat", "idle-demote", "all-dram", or a placement
	// policy from the core registry composed with Tracker.
	Policy string `json:"policy,omitempty"`
	// Tracker is the access tracker for composition policies.
	Tracker string `json:"tracker,omitempty"`
	// SlowdownPct is the tolerable-slowdown target (the paper's single
	// input). Reloadable.
	SlowdownPct float64 `json:"slowdown_pct,omitempty"`
	// IdleWindowS is the idle-demote policy's window, in seconds.
	IdleWindowS float64 `json:"idle_window_s,omitempty"`
	// Scale names the profile: tiny, bench, or repro.
	Scale string `json:"scale,omitempty"`
	// DurationS overrides the profile's simulated run length, in seconds.
	DurationS float64 `json:"duration_s,omitempty"`
	// PeriodS overrides the profile's scan interval, in (simulated)
	// seconds. Reloadable: a mid-run change takes effect next period.
	PeriodS float64 `json:"period_s,omitempty"`
	// Seed drives all simulation randomness.
	Seed uint64 `json:"seed,omitempty"`
	// Footprint rescales the application model ("64G", "1T", ...).
	Footprint string `json:"footprint,omitempty"`
	// Sparse selects the region-grain page table.
	Sparse bool `json:"sparse,omitempty"`
	// ShardWorkers shards tracker scans (0/1 = serial, bit-identical).
	ShardWorkers int `json:"shard_workers,omitempty"`
	// Workers fans independent runs out (CLI baseline+policy pair).
	Workers int `json:"workers,omitempty"`
	// Tiers is an N-tier device hierarchy, fastest first.
	Tiers []string `json:"tiers,omitempty"`
	// Tenants co-locates several models under fleet arbitration
	// (thermostat-sim only; thermostatd rejects it for now).
	Tenants []string `json:"tenants,omitempty"`
	// Chaos configures deterministic fault injection.
	Chaos ChaosConfig `json:"chaos"`
	// Telemetry selects the run's export sinks.
	Telemetry TelemetryConfig `json:"telemetry"`
	// Serve and Pprof are observability listener addresses.
	Serve string `json:"serve,omitempty"`
	Pprof string `json:"pprof,omitempty"`
	// LogFormat is "text" or "json".
	LogFormat string `json:"log_format,omitempty"`
	// Daemon holds the thermostatd lifecycle knobs.
	Daemon Lifecycle `json:"daemon"`
}

// ChaosConfig mirrors the -chaos-* flags. Rate and PermanentFraction are
// reloadable while an injector exists (initial Rate > 0); a zero initial
// rate installs no injector at all, so chaos cannot be enabled by reload.
type ChaosConfig struct {
	Rate              float64 `json:"rate,omitempty"`
	PermanentFraction float64 `json:"permanent_fraction,omitempty"`
	Seed              uint64  `json:"seed,omitempty"`
}

// TelemetryConfig selects export sinks, written when the run ends (or is
// stopped, halted, or flushed by the panic supervisor). All reloadable.
type TelemetryConfig struct {
	// Trace is the Chrome trace_event JSON output path.
	Trace string `json:"trace,omitempty"`
	// Metrics is the per-epoch JSONL output path.
	Metrics string `json:"metrics,omitempty"`
	// Epochs prints the per-epoch table at run end.
	Epochs bool `json:"epochs,omitempty"`
}

// Lifecycle holds the thermostatd-only knobs: checkpointing, wall-clock
// pacing, and the degradation ladder. All reloadable.
type Lifecycle struct {
	// CheckpointPath, when set, enables crash-safe checkpoints: the run's
	// deterministic closure (config, reload timeline, progress, state
	// digest) is written there temp-then-rename at epoch boundaries, and
	// a restart finding the file resumes the run bit-identically.
	CheckpointPath string `json:"checkpoint_path,omitempty"`
	// CheckpointEveryEpochs is the checkpoint cadence (default 8).
	CheckpointEveryEpochs int `json:"checkpoint_every_epochs,omitempty"`
	// EpochWallMs paces the run against the wall clock: each epoch takes
	// at least this many wall milliseconds, so a long-running daemon is
	// observable and reloadable mid-flight. Purely wall-side; virtual
	// results are unchanged. 0 runs flat out.
	EpochWallMs int `json:"epoch_wall_ms,omitempty"`
	// Degrade parameterizes the degradation ladder.
	Degrade DegradeConfig `json:"degrade"`
}

// DegradeConfig parameterizes the graceful-degradation state machine (see
// degrade.go). An epoch is "faulty" when the chaos report grew — injected
// faults, rollbacks or fresh quarantines — and "clean" otherwise.
type DegradeConfig struct {
	// Disabled pins the daemon to healthy regardless of faults.
	Disabled bool `json:"disabled,omitempty"`
	// DegradeAfter consecutive faulty epochs move healthy → degraded
	// (default 2).
	DegradeAfter int `json:"degrade_after,omitempty"`
	// QuarantineAfter further consecutive faulty epochs move degraded →
	// quarantine-only (default 3).
	QuarantineAfter int `json:"quarantine_after,omitempty"`
	// HaltAfter further consecutive faulty epochs move quarantine-only →
	// halted, stopping the run (default 0: never halt).
	HaltAfter int `json:"halt_after,omitempty"`
	// RecoverAfter consecutive clean epochs climb one rung back up
	// (default 4; the asymmetry against DegradeAfter is the hysteresis).
	RecoverAfter int `json:"recover_after,omitempty"`
	// WidenFactor multiplies the scan interval while degraded or worse,
	// shedding daemon work under pressure (default 4).
	WidenFactor int64 `json:"widen_factor,omitempty"`
}

// Normalize returns c with every "use the default" zero field filled in.
// Decode applies it, so a decoded config re-encodes stably.
func (c Config) Normalize() Config {
	if c.Policy == "" {
		c.Policy = "thermostat"
	}
	if c.Scale == "" {
		c.Scale = "repro"
	}
	if c.SlowdownPct == 0 {
		c.SlowdownPct = 3
	}
	if c.IdleWindowS == 0 {
		c.IdleWindowS = 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Chaos.Seed == 0 {
		c.Chaos.Seed = 1
	}
	if c.LogFormat == "" {
		c.LogFormat = obsv.LogText
	}
	if c.Daemon.CheckpointEveryEpochs == 0 {
		c.Daemon.CheckpointEveryEpochs = 8
	}
	g := &c.Daemon.Degrade
	if g.DegradeAfter == 0 {
		g.DegradeAfter = 2
	}
	if g.QuarantineAfter == 0 {
		g.QuarantineAfter = 3
	}
	if g.RecoverAfter == 0 {
		g.RecoverAfter = 4
	}
	if g.WidenFactor == 0 {
		g.WidenFactor = 4
	}
	return c
}

// isCompositionPolicy reports whether name is a placement policy from the
// core registry (a tracker × policy composition) rather than a fixed arm.
func isCompositionPolicy(name string) bool {
	for _, p := range core.PolicyNames() {
		if p == name {
			return true
		}
	}
	return false
}

// MigratesPages reports whether the policy arm moves pages between tiers
// (every arm except the all-DRAM baseline does).
func MigratesPages(policy string) bool { return policy != "all-dram" }

// EnginePolicy reports whether the policy runs through a core.Engine — the
// paper's arm or any tracker × policy composition. Only engine runs carry
// the daemon's quarantine ladder and checkpoint digests.
func EnginePolicy(policy string) bool {
	return policy == "thermostat" || isCompositionPolicy(policy)
}

// ValidScale reports whether name is a known scale profile.
func ValidScale(name string) bool {
	return name == "tiny" || name == "bench" || name == "repro"
}

// Validate rejects inconsistent configurations with a one-line usage error
// per defect. It is the single copy of the rules both CLIs used to
// duplicate: conditions that once surfaced as mid-run fatals (unknown
// presets, -tiers under the wrong policy) fail here instead. Field names in
// the messages follow the CLI flags; config-file keys are the snake_case
// spellings of the same names.
func (c Config) Validate() error {
	if c.App != "" {
		if _, ok := workload.ByName(c.App); !ok {
			return fmt.Errorf("unknown application %q (try -list)", c.App)
		}
	}
	for _, name := range c.Apps {
		if _, ok := workload.ByName(strings.TrimSpace(name)); !ok {
			return fmt.Errorf("unknown application %q", strings.TrimSpace(name))
		}
	}
	switch {
	case c.Policy == "" || c.Policy == "thermostat" || c.Policy == "idle-demote" || c.Policy == "all-dram":
	case isCompositionPolicy(c.Policy):
	default:
		return fmt.Errorf("unknown policy %q (thermostat, idle-demote, all-dram, or a composition policy: %s)",
			c.Policy, strings.Join(core.PolicyNames(), ", "))
	}
	if c.Tracker != "" {
		known := false
		for _, t := range core.TrackerNames() {
			if t == c.Tracker {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("unknown tracker %q (trackers: %s)",
				c.Tracker, strings.Join(core.TrackerNames(), ", "))
		}
		if !isCompositionPolicy(c.Policy) {
			return fmt.Errorf("-tracker %s needs a composition policy (-policy %s); -policy %s is a fixed arm",
				c.Tracker, strings.Join(core.PolicyNames(), " or "), c.Policy)
		}
	}
	if !ValidScale(c.Scale) {
		return fmt.Errorf("unknown scale %q (tiny, bench, or repro)", c.Scale)
	}
	if c.DurationS < 0 {
		return fmt.Errorf("-duration %g is negative", c.DurationS)
	}
	if c.PeriodS < 0 {
		return fmt.Errorf("period_s %g is negative", c.PeriodS)
	}
	if c.Footprint != "" {
		if _, err := workload.ParseSize(c.Footprint); err != nil {
			return fmt.Errorf("-footprint: %v", err)
		}
		if len(c.Tenants) > 0 {
			return fmt.Errorf("-footprint is ambiguous with -tenants; size each tenant's model instead")
		}
	}
	if c.ShardWorkers < 0 {
		return fmt.Errorf("-shard-workers %d is negative (0 = serial)", c.ShardWorkers)
	}
	if EnginePolicy(c.Policy) && c.Policy != "" && c.SlowdownPct <= 0 {
		return fmt.Errorf("-slowdown %g must be positive for -policy %s", c.SlowdownPct, c.Policy)
	}
	if c.Policy == "idle-demote" && c.IdleWindowS <= 0 {
		return fmt.Errorf("-idle-window %g must be positive for -policy idle-demote", c.IdleWindowS)
	}
	if c.Chaos.Rate < 0 || c.Chaos.Rate > 1 {
		return fmt.Errorf("-chaos-rate %g outside [0, 1]", c.Chaos.Rate)
	}
	if c.Chaos.PermanentFraction < 0 || c.Chaos.PermanentFraction > 1 {
		return fmt.Errorf("-chaos-permanent %g outside [0, 1]", c.Chaos.PermanentFraction)
	}
	if c.Chaos.Rate > 0 && !MigratesPages(c.Policy) {
		return fmt.Errorf("-chaos-rate needs a migrating policy; all-dram never migrates")
	}
	if !obsv.ValidLogFormat(c.LogFormat) {
		return fmt.Errorf("unknown -log-format %q (text or json)", c.LogFormat)
	}
	if c.Serve != "" && c.Serve == c.Pprof {
		return fmt.Errorf("-serve and -pprof are both %q; one listener per address", c.Serve)
	}
	if len(c.Tenants) > 0 {
		// The fleet path builds one two-tier machine per run and gives every
		// tenant the same engine composition, so it composes with chaos (the
		// injector is machine-wide) but not with -tiers or the fixed
		// non-migrating arms.
		if len(c.Tiers) > 0 {
			return fmt.Errorf("-tenants is not supported with -tiers (the fleet pool is the two-tier DRAM budget)")
		}
		if !EnginePolicy(c.Policy) {
			return fmt.Errorf("-tenants needs a migrating per-tenant engine (-policy thermostat, %s)",
				strings.Join(core.PolicyNames(), ", or "))
		}
		for _, name := range c.Tenants {
			name = strings.TrimSpace(name)
			if _, ok := workload.ByName(name); !ok {
				return fmt.Errorf("unknown tenant application %q (try -list)", name)
			}
		}
	}
	if len(c.Tiers) > 0 {
		// A deep hierarchy only makes sense under an engine that migrates
		// between its tiers: the paper's arm or any tracker × policy
		// composition.
		if !EnginePolicy(c.Policy) {
			return fmt.Errorf("-tiers needs a migrating engine (-policy thermostat, %s)",
				strings.Join(core.PolicyNames(), ", or "))
		}
		if c.Chaos.Rate > 0 {
			return fmt.Errorf("-chaos-rate is not supported with -tiers")
		}
		for _, name := range c.Tiers {
			name = strings.TrimSpace(name)
			if _, ok := mem.Preset(name, 0); !ok {
				return fmt.Errorf("unknown device preset %q (presets: %s)",
					name, strings.Join(mem.PresetNames(), ", "))
			}
		}
	}
	d := c.Daemon
	if d.CheckpointEveryEpochs < 0 {
		return fmt.Errorf("daemon.checkpoint_every_epochs %d is negative", d.CheckpointEveryEpochs)
	}
	if d.EpochWallMs < 0 {
		return fmt.Errorf("daemon.epoch_wall_ms %d is negative", d.EpochWallMs)
	}
	g := d.Degrade
	if g.DegradeAfter < 0 || g.QuarantineAfter < 0 || g.HaltAfter < 0 || g.RecoverAfter < 0 {
		return fmt.Errorf("daemon.degrade thresholds must be non-negative (degrade_after %d, quarantine_after %d, halt_after %d, recover_after %d)",
			g.DegradeAfter, g.QuarantineAfter, g.HaltAfter, g.RecoverAfter)
	}
	if g.WidenFactor < 0 {
		return fmt.Errorf("daemon.degrade.widen_factor %d is negative", g.WidenFactor)
	}
	return nil
}

// ValidateForDaemon layers thermostatd's own requirements on Validate: the
// daemon runs exactly one app under an engine policy (the degradation
// ladder and checkpoint digests drive the engine), and the fleet and
// multi-app paths stay CLI-only for now.
func (c Config) ValidateForDaemon() error {
	if err := c.Validate(); err != nil {
		return err
	}
	if c.App == "" {
		return fmt.Errorf("daemon: config needs an app (see thermostat-sim -list)")
	}
	if len(c.Apps) > 0 {
		return fmt.Errorf("daemon: apps is a repro knob; thermostatd runs exactly one app")
	}
	if len(c.Tenants) > 0 {
		return fmt.Errorf("daemon: thermostatd does not run tenant fleets yet; use thermostat-sim -tenants")
	}
	if !EnginePolicy(c.Policy) {
		return fmt.Errorf("daemon: policy %q has no engine; thermostatd needs thermostat or a tracker × policy composition (%s)",
			c.Policy, strings.Join(core.PolicyNames(), ", "))
	}
	return nil
}

// Decode parses a config document — strict JSON (first byte '{') or the
// documented YAML subset — applies defaults, and returns it. Unknown keys,
// duplicate keys, type mismatches and trailing garbage are all errors;
// rejects are deterministic, so the same bytes always produce the same
// outcome (FuzzDaemonConfig pins this).
func Decode(data []byte) (Config, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	var c Config
	if len(trimmed) > 0 && trimmed[0] == '{' {
		if err := strictUnmarshal(trimmed, &c); err != nil {
			return Config{}, fmt.Errorf("daemon: parse json config: %w", err)
		}
		return c.Normalize(), nil
	}
	v, err := parseYAML(data)
	if err != nil {
		return Config{}, fmt.Errorf("daemon: parse yaml config: %w", err)
	}
	m, ok := v.(map[string]any)
	if !ok {
		return Config{}, fmt.Errorf("daemon: parse yaml config: top level must be a mapping")
	}
	b, err := json.Marshal(m)
	if err != nil {
		return Config{}, fmt.Errorf("daemon: parse yaml config: %v", err)
	}
	if err := strictUnmarshal(b, &c); err != nil {
		return Config{}, fmt.Errorf("daemon: parse yaml config: %w", err)
	}
	return c.Normalize(), nil
}

// strictUnmarshal decodes JSON into v rejecting unknown fields and
// trailing non-whitespace.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after config document")
	}
	return nil
}

// LoadFile reads and decodes the config file at path.
func LoadFile(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("daemon: read config: %w", err)
	}
	c, err := Decode(data)
	if err != nil {
		return Config{}, fmt.Errorf("daemon: %s: %w", path, err)
	}
	return c, nil
}

// Encode renders c as indented JSON (the normalized form checkpoints and
// -check print). Decode(Encode(c)) round-trips exactly.
func (c Config) Encode() []byte {
	b, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		// Config has no unmarshalable field types; this cannot happen.
		panic(err)
	}
	return append(b, '\n')
}

// DiffReload splits a proposed new config against the running one into the
// permitted live changes and returns them as human-readable "key: old →
// new" lines. A change to any structural field — anything that would alter
// the seeded simulation already in flight (app, policy, scale, seed,
// footprint, tiers, listeners, ...) — rejects the whole reload with an
// error, so a bad edit never half-applies. An empty slice with a nil error
// means the reload is a no-op.
func DiffReload(old, new Config) ([]string, error) {
	type structural struct {
		name     string
		old, new any
	}
	fixed := []structural{
		{"app", old.App, new.App},
		{"apps", strings.Join(old.Apps, ","), strings.Join(new.Apps, ",")},
		{"policy", old.Policy, new.Policy},
		{"tracker", old.Tracker, new.Tracker},
		{"idle_window_s", old.IdleWindowS, new.IdleWindowS},
		{"scale", old.Scale, new.Scale},
		{"duration_s", old.DurationS, new.DurationS},
		{"seed", old.Seed, new.Seed},
		{"footprint", old.Footprint, new.Footprint},
		{"sparse", old.Sparse, new.Sparse},
		{"shard_workers", old.ShardWorkers, new.ShardWorkers},
		{"workers", old.Workers, new.Workers},
		{"tiers", strings.Join(old.Tiers, ","), strings.Join(new.Tiers, ",")},
		{"tenants", strings.Join(old.Tenants, ","), strings.Join(new.Tenants, ",")},
		{"chaos.seed", old.Chaos.Seed, new.Chaos.Seed},
		{"serve", old.Serve, new.Serve},
		{"pprof", old.Pprof, new.Pprof},
		{"log_format", old.LogFormat, new.LogFormat},
	}
	for _, f := range fixed {
		if f.old != f.new {
			return nil, fmt.Errorf("daemon: %s is not reloadable (%v → %v); restart to change it", f.name, f.old, f.new)
		}
	}
	if old.Chaos.Rate == 0 && new.Chaos.Rate > 0 {
		return nil, fmt.Errorf("daemon: chaos cannot be enabled by reload; a zero-rate start installs no injector")
	}
	var changes []string
	add := func(key string, o, n any) {
		if o != n {
			changes = append(changes, fmt.Sprintf("%s: %v → %v", key, o, n))
		}
	}
	add("slowdown_pct", old.SlowdownPct, new.SlowdownPct)
	add("period_s", old.PeriodS, new.PeriodS)
	add("chaos.rate", old.Chaos.Rate, new.Chaos.Rate)
	add("chaos.permanent_fraction", old.Chaos.PermanentFraction, new.Chaos.PermanentFraction)
	add("telemetry.trace", old.Telemetry.Trace, new.Telemetry.Trace)
	add("telemetry.metrics", old.Telemetry.Metrics, new.Telemetry.Metrics)
	add("telemetry.epochs", old.Telemetry.Epochs, new.Telemetry.Epochs)
	add("daemon.checkpoint_path", old.Daemon.CheckpointPath, new.Daemon.CheckpointPath)
	add("daemon.checkpoint_every_epochs", old.Daemon.CheckpointEveryEpochs, new.Daemon.CheckpointEveryEpochs)
	add("daemon.epoch_wall_ms", old.Daemon.EpochWallMs, new.Daemon.EpochWallMs)
	if old.Daemon.Degrade != new.Daemon.Degrade {
		changes = append(changes, "daemon.degrade: thresholds retuned")
	}
	return changes, nil
}
