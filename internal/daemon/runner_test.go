package daemon

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// tinyConfig is the base test config: redis under the paper's arm at the
// tiny profile, short enough for unit tests, with both exports on.
func tinyConfig(t *testing.T, dir string) Config {
	t.Helper()
	return Config{
		App: "redis", Policy: "thermostat", Scale: "tiny",
		SlowdownPct: 3, Seed: 1, DurationS: 4,
		Telemetry: TelemetryConfig{
			Trace:   filepath.Join(dir, "trace.json"),
			Metrics: filepath.Join(dir, "metrics.jsonl"),
		},
	}.Normalize()
}

func readFileT(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	if len(data) == 0 {
		t.Fatalf("%s is empty", path)
	}
	return data
}

func TestRunDeterministic(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	ra := &Runner{Config: tinyConfig(t, dirA), NoPacing: true}
	outA, err := ra.Run()
	if err != nil {
		t.Fatalf("run A: %v", err)
	}
	rb := &Runner{Config: tinyConfig(t, dirB), NoPacing: true}
	outB, err := rb.Run()
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	if outA.Epochs == 0 || outA.Epochs != outB.Epochs {
		t.Fatalf("epochs: %d vs %d", outA.Epochs, outB.Epochs)
	}
	for _, name := range []string{"trace.json", "metrics.jsonl"} {
		a := readFileT(t, filepath.Join(dirA, name))
		b := readFileT(t, filepath.Join(dirB, name))
		if string(a) != string(b) {
			t.Errorf("%s differs between identical runs", name)
		}
	}
	if outA.Health != Healthy {
		t.Errorf("clean run ended %v, want healthy", outA.Health)
	}
}

// TestReloadVsColdStart is the reload-as-event determinism contract: a live
// mid-run reload, journaled with its virtual apply time, must be
// byte-identical to a cold start fed that journal as a preloaded timeline.
func TestReloadVsColdStart(t *testing.T) {
	liveDir, coldDir := t.TempDir(), t.TempDir()

	// Live run: wall-paced so the reload posted from this goroutine lands
	// mid-run at some epoch boundary (which one doesn't matter — the
	// journal records it).
	liveCfg := tinyConfig(t, liveDir)
	liveCfg.Daemon.EpochWallMs = 5
	live := &Runner{Config: liveCfg}
	reloaded := liveCfg
	reloaded.SlowdownPct = 8
	reloaded.Daemon.EpochWallMs = 5
	errc := make(chan error, 1)
	var out *RunOutcome
	go func() {
		var err error
		out, err = live.Run()
		errc <- err
	}()
	time.Sleep(25 * time.Millisecond)
	if _, err := live.Reload(reloaded); err != nil {
		t.Fatalf("reload: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("live run: %v", err)
	}
	if len(out.Timeline) != 1 {
		t.Fatalf("reload did not land mid-run (timeline %d entries, %d epochs)", len(out.Timeline), out.Epochs)
	}
	if out.Config.SlowdownPct != 8 {
		t.Fatalf("reload not applied: %+v", out.Config)
	}

	// Cold start: same base config, the live run's journal preloaded, with
	// the telemetry paths redirected (paths are not part of the stream).
	coldCfg := tinyConfig(t, coldDir)
	coldCfg.Daemon.EpochWallMs = 5
	timeline := make([]TimelineEntry, len(out.Timeline))
	copy(timeline, out.Timeline)
	timeline[0].Config.Telemetry = coldCfg.Telemetry
	cold := &Runner{Config: coldCfg, Timeline: timeline, NoPacing: true}
	outCold, err := cold.Run()
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if len(outCold.Timeline) != 1 || outCold.Timeline[0].ApplyAtNs != out.Timeline[0].ApplyAtNs {
		t.Fatalf("cold run applied %+v, want %+v", outCold.Timeline, out.Timeline)
	}
	for _, name := range []string{"trace.json", "metrics.jsonl"} {
		a := readFileT(t, filepath.Join(liveDir, name))
		b := readFileT(t, filepath.Join(coldDir, name))
		if string(a) != string(b) {
			t.Errorf("%s: live reload differs from cold start with the same timeline", name)
		}
	}
	if outCold.Result.Ops != out.Result.Ops ||
		outCold.Result.Metrics.SlowAccesses != out.Result.Metrics.SlowAccesses ||
		outCold.Result.Metrics.MigrationBytes != out.Result.Metrics.MigrationBytes {
		t.Errorf("counters diverged: live %+v cold %+v", out.Result.Metrics, outCold.Result.Metrics)
	}
}

// TestCheckpointRestoreBitIdentity kills a run at an epoch boundary
// (simulated kill -9: checkpoint survives, exports don't), restores from
// the checkpoint, and requires the restored run's final exports to equal an
// uninterrupted reference run's byte-for-byte.
func TestCheckpointRestoreBitIdentity(t *testing.T) {
	refDir, crashDir := t.TempDir(), t.TempDir()

	refCfg := tinyConfig(t, refDir)
	ref := &Runner{Config: refCfg, NoPacing: true}
	if _, err := ref.Run(); err != nil {
		t.Fatalf("reference run: %v", err)
	}

	crashCfg := tinyConfig(t, crashDir)
	crashCfg.Daemon.CheckpointPath = filepath.Join(crashDir, "daemon.ckpt")
	crashCfg.Daemon.CheckpointEveryEpochs = 3
	crash := &Runner{Config: crashCfg, NoPacing: true, CrashAfterEpoch: 7}
	_, err := crash.Run()
	if !errors.Is(err, ErrSimulatedCrash) {
		t.Fatalf("crash run: %v, want ErrSimulatedCrash", err)
	}
	if _, err := os.Stat(crashCfg.Telemetry.Trace); !os.IsNotExist(err) {
		t.Fatalf("crash must not flush exports (stat: %v)", err)
	}

	cp, err := ReadCheckpoint(crashCfg.Daemon.CheckpointPath)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	if cp == nil || cp.SavedAtEpoch != 6 {
		t.Fatalf("checkpoint %+v, want saved_at_epoch 6", cp)
	}

	restore := &Runner{Config: cp.Config, Timeline: cp.Timeline, Restore: cp, NoPacing: true}
	outR, err := restore.Run()
	if err != nil {
		t.Fatalf("restored run: %v", err)
	}
	if outR.Health != Healthy {
		t.Fatalf("restored run ended %v", outR.Health)
	}
	for _, name := range []string{"trace.json", "metrics.jsonl"} {
		a := readFileT(t, filepath.Join(refDir, name))
		b := readFileT(t, filepath.Join(crashDir, name))
		if string(a) != string(b) {
			t.Errorf("%s: restored run differs from uninterrupted reference", name)
		}
	}
	if _, err := os.Stat(crashCfg.Daemon.CheckpointPath); !os.IsNotExist(err) {
		t.Errorf("completed restore should remove the checkpoint (stat: %v)", err)
	}
}

// TestRestoreDigestMismatch proves the restore path verifies state: a
// checkpoint whose digest cannot be reproduced is rejected, not silently
// resumed.
func TestRestoreDigestMismatch(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig(t, dir)
	cfg.Daemon.CheckpointPath = filepath.Join(dir, "daemon.ckpt")
	cfg.Daemon.CheckpointEveryEpochs = 3
	crash := &Runner{Config: cfg, NoPacing: true, CrashAfterEpoch: 7}
	if _, err := crash.Run(); !errors.Is(err, ErrSimulatedCrash) {
		t.Fatalf("crash run: %v", err)
	}
	cp, err := ReadCheckpoint(cfg.Daemon.CheckpointPath)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	cp.Digest = "deadbeefdeadbeef"
	restore := &Runner{Config: cp.Config, Timeline: cp.Timeline, Restore: cp, NoPacing: true}
	if _, err := restore.Run(); err == nil {
		t.Fatal("restore with a corrupt digest must fail")
	}
}

// TestQuarantineOnlyUnderChaos drives sustained permanent-fault chaos and
// requires the ladder to reach quarantine-only without the run crashing:
// bounded backpressure, not a fatal.
func TestQuarantineOnlyUnderChaos(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig(t, dir)
	cfg.Chaos = ChaosConfig{Rate: 1, PermanentFraction: 1, Seed: 1}
	cfg.Daemon.Degrade = DegradeConfig{
		DegradeAfter: 1, QuarantineAfter: 1, RecoverAfter: 1000, WidenFactor: 1,
	}
	r := &Runner{Config: cfg, NoPacing: true}
	out, err := r.Run()
	if err != nil {
		t.Fatalf("chaos run must not crash: %v", err)
	}
	if out.Health != QuarantineOnly {
		t.Fatalf("health %v, want quarantine-only (epochs %d, faults %+v)",
			out.Health, out.Epochs, out.Engine.FaultReport())
	}
	if !out.Engine.Frozen() {
		t.Error("quarantine-only must freeze the engine")
	}
}

// TestHaltLadder runs the same storm with a halt threshold and requires a
// deliberate ErrHalted exit with flushed exports.
func TestHaltLadder(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig(t, dir)
	cfg.Chaos = ChaosConfig{Rate: 1, PermanentFraction: 1, Seed: 1}
	cfg.Daemon.Degrade = DegradeConfig{
		DegradeAfter: 1, QuarantineAfter: 1, HaltAfter: 1, RecoverAfter: 1000, WidenFactor: 1,
	}
	r := &Runner{Config: cfg, NoPacing: true}
	out, err := r.Run()
	if !errors.Is(err, ErrHalted) {
		t.Fatalf("err %v, want ErrHalted", err)
	}
	if out == nil || out.Health != Halted {
		t.Fatalf("outcome %+v, want halted", out)
	}
	readFileT(t, cfg.Telemetry.Trace) // halt still flushes telemetry
}

// TestGracefulStop stops a paced run mid-flight and expects a clean partial
// result with exports.
func TestGracefulStop(t *testing.T) {
	dir := t.TempDir()
	cfg := tinyConfig(t, dir)
	cfg.Daemon.EpochWallMs = 5
	r := &Runner{Config: cfg}
	errc := make(chan error, 1)
	var out *RunOutcome
	go func() {
		var err error
		out, err = r.Run()
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	r.Stop()
	if err := <-errc; err != nil {
		t.Fatalf("stopped run: %v", err)
	}
	if out.Epochs == 0 {
		t.Fatal("stop before any epoch completed")
	}
	readFileT(t, cfg.Telemetry.Trace)
}

// TestLadderUnit walks the state machine directly.
func TestLadderUnit(t *testing.T) {
	l := &ladder{cfg: DegradeConfig{DegradeAfter: 2, QuarantineAfter: 2, HaltAfter: 2, RecoverAfter: 3, WidenFactor: 4}}
	seq := []struct {
		faulty bool
		want   Health
	}{
		{true, Healthy}, {true, Degraded}, // 2 faulty → degraded
		{true, Degraded}, {true, QuarantineOnly}, // 2 more → quarantine-only
		{false, QuarantineOnly}, {false, QuarantineOnly}, {false, Degraded}, // 3 clean → climb
		{false, Degraded}, {true, Degraded}, // streak broken by fault
		{false, Degraded}, {false, Degraded}, {false, Healthy}, // fresh 3 clean → healthy
	}
	for i, s := range seq {
		h, _ := l.Observe(s.faulty)
		if h != s.want {
			t.Fatalf("step %d (faulty=%v): health %v, want %v", i, s.faulty, h, s.want)
		}
	}
	// Halt path and terminality.
	l2 := &ladder{cfg: DegradeConfig{DegradeAfter: 1, QuarantineAfter: 1, HaltAfter: 1, RecoverAfter: 2}}
	for i := 0; i < 3; i++ {
		l2.Observe(true)
	}
	if h, _ := l2.Observe(false); h != Halted {
		t.Fatalf("halted must be terminal, got %v", h)
	}
	// Disabled ladder never moves.
	l3 := &ladder{cfg: DegradeConfig{Disabled: true, DegradeAfter: 1}}
	if h, changed := l3.Observe(true); h != Healthy || changed {
		t.Fatalf("disabled ladder moved: %v", h)
	}
}
