package vm

import (
	"testing"

	"thermostat/internal/pagetable"
)

func TestGuestVPIDValidation(t *testing.T) {
	if _, err := New(DefaultConfig(), 0); err == nil {
		t.Fatal("nested guest with VPID 0 accepted")
	}
	g, err := New(DefaultConfig(), 1)
	if err != nil || g.VPID() != 1 {
		t.Fatalf("New: %v", err)
	}
	// Native mode may use VPID 0 (bare metal host).
	if _, err := New(Config{Mode: Native}, 0); err != nil {
		t.Fatalf("native VPID 0 rejected: %v", err)
	}
}

func TestWalkAccessesMatrix(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		guest pagetable.Level
		want  int
	}{
		{"native 4K", Config{Mode: Native}, pagetable.Level4K, 4},
		{"native 2M", Config{Mode: Native}, pagetable.Level2M, 3},
		{"nested 4K/4K", Config{Mode: Nested}, pagetable.Level4K, 24},
		{"nested 2M/2M", Config{Mode: Nested, HostHugePages: true}, pagetable.Level2M, 15},
		{"nested 2M/4K", Config{Mode: Nested}, pagetable.Level2M, 19},
		{"nested 4K/2M", Config{Mode: Nested, HostHugePages: true}, pagetable.Level4K, 19},
	}
	for _, c := range cases {
		g, err := New(c.cfg, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := g.WalkAccesses(c.guest); got != c.want {
			t.Errorf("%s: WalkAccesses = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestFaultOverhead(t *testing.T) {
	guestTrap, _ := New(DefaultConfig(), 1)
	if guestTrap.FaultOverheadNs() != 0 {
		t.Fatal("guest-side trap should have no vmexit overhead")
	}
	hostTrap, _ := New(Config{Mode: Nested, TrapInHost: true}, 1)
	if hostTrap.FaultOverheadNs() != DefaultVMExitLatencyNs {
		t.Fatalf("host-side trap overhead = %d", hostTrap.FaultOverheadNs())
	}
	custom, _ := New(Config{Mode: Nested, TrapInHost: true, VMExitLatencyNs: 9999}, 1)
	if custom.FaultOverheadNs() != 9999 {
		t.Fatal("custom vmexit latency ignored")
	}
	// TrapInHost is meaningless without nesting.
	native, _ := New(Config{Mode: Native, TrapInHost: true}, 0)
	if native.FaultOverheadNs() != 0 {
		t.Fatal("native mode should never charge vmexit")
	}
}

func TestModeString(t *testing.T) {
	if Native.String() != "native" || Nested.String() != "nested" {
		t.Fatal("mode names wrong")
	}
}
