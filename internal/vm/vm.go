// Package vm models the virtualization layer of the paper's testbed: KVM
// guests with nested (two-dimensional) paging, VPID-tagged TLB entries, and
// vmexit costs.
//
// The parts of virtualization that matter to Thermostat are (a) nested page
// walks, which make 4KB page management drastically more expensive and
// motivate huge-page awareness (Table 1), and (b) the placement of the
// BadgerTrap fault handler: in the guest a poison fault costs ~1us, while in
// the host every fault would vmexit, destroy the VPID-0-tagging invariant,
// and cost far more — which is why the paper installs BadgerTrap in the
// guest (§4.2).
package vm

import (
	"fmt"

	"thermostat/internal/pagetable"
	"thermostat/internal/tlb"
	"thermostat/internal/walk"
)

// PagingMode selects native or nested translation.
type PagingMode int

// Paging modes.
const (
	// Native runs the workload bare-metal: one-dimensional walks.
	Native PagingMode = iota
	// Nested runs under a hypervisor with EPT/NPT: two-dimensional walks.
	Nested
)

// String names the mode.
func (m PagingMode) String() string {
	switch m {
	case Native:
		return "native"
	case Nested:
		return "nested"
	default:
		return fmt.Sprintf("mode%d", int(m))
	}
}

// DefaultVMExitLatencyNs approximates a KVM vmexit/vmentry round trip plus
// host fault dispatch.
const DefaultVMExitLatencyNs = 4000

// Config describes one guest's virtualization setup.
type Config struct {
	// Mode selects native or nested paging.
	Mode PagingMode
	// HostHugePages selects 2MB host (EPT) mappings; false means the host
	// maps guest memory with 4KB pages. Only meaningful under Nested.
	HostHugePages bool
	// TrapInHost moves the BadgerTrap handler to the host, charging a
	// vmexit on every poison fault (the configuration the paper rejects).
	TrapInHost bool
	// VMExitLatencyNs is the vmexit cost; 0 selects the default.
	VMExitLatencyNs int64
}

// DefaultConfig is the paper's evaluated configuration: KVM with huge pages
// at both levels and BadgerTrap in the guest.
func DefaultConfig() Config {
	return Config{Mode: Nested, HostHugePages: true}
}

// VM is one guest.
type VM struct {
	cfg  Config
	vpid tlb.VPID
}

// New builds a guest with the given VPID (must be non-zero; VPID 0 is the
// host).
func New(cfg Config, vpid tlb.VPID) (*VM, error) {
	if vpid == tlb.HostVPID && cfg.Mode == Nested {
		return nil, fmt.Errorf("vm: guest VPID must be non-zero")
	}
	if cfg.VMExitLatencyNs == 0 {
		cfg.VMExitLatencyNs = DefaultVMExitLatencyNs
	}
	return &VM{cfg: cfg, vpid: vpid}, nil
}

// VPID returns the guest's TLB tag.
func (v *VM) VPID() tlb.VPID { return v.vpid }

// Config returns the guest's configuration.
func (v *VM) Config() Config { return v.cfg }

// Nested reports whether translation is two-dimensional.
func (v *VM) Nested() bool { return v.cfg.Mode == Nested }

// HostWalkDepth returns the host-dimension walk depth for nested walks.
func (v *VM) HostWalkDepth() int {
	if v.cfg.HostHugePages {
		return walk.Depth2M
	}
	return walk.Depth4K
}

// WalkAccesses returns the number of page-table accesses to translate a
// guest mapping at the given level.
func (v *VM) WalkAccesses(guestLevel pagetable.Level) int {
	g := walk.Depth4K
	if guestLevel == pagetable.Level2M {
		g = walk.Depth2M
	}
	return walk.Accesses(v.Nested(), g, v.HostWalkDepth())
}

// FaultOverheadNs returns the extra latency a poison fault incurs beyond the
// handler itself: zero with the handler in the guest, a vmexit round trip
// with the handler in the host.
func (v *VM) FaultOverheadNs() int64 {
	if v.cfg.TrapInHost && v.Nested() {
		return v.cfg.VMExitLatencyNs
	}
	return 0
}
