package numa

import (
	"testing"

	"thermostat/internal/addr"
	"thermostat/internal/mem"
	"thermostat/internal/pagetable"
	"thermostat/internal/tlb"
)

type fixture struct {
	sys *mem.System
	pt  *pagetable.Table
	tl  *tlb.TLB
	mig *Migrator
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	sys := mem.NewSystem(mem.DefaultDRAM(16<<20), mem.DefaultSlow(16<<20))
	pt := pagetable.New()
	tl := tlb.New(tlb.DefaultConfig())
	return &fixture{sys: sys, pt: pt, tl: tl, mig: NewMigrator(sys, pt, tl, mem.NewMeter(0))}
}

func (f *fixture) mapHuge(t *testing.T, v addr.Virt, tier mem.TierID) addr.Phys {
	t.Helper()
	p, err := f.sys.Tier(tier).Alloc2M()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.pt.Map2M(v, p, pagetable.Writable); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMoveHugeLeaf(t *testing.T) {
	f := newFixture(t)
	v := addr.Virt2M(3)
	f.mapHuge(t, v, mem.Fast)
	f.tl.Insert(v, pagetable.Level2M, 0, 1)
	fastBefore := f.sys.Tier(mem.Fast).Used()

	cost, err := f.mig.MoveHuge(v+777, mem.Slow, 1, mem.Demotion)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatalf("cost = %d", cost)
	}
	tier, err := f.mig.TierOfPage(v)
	if err != nil || tier != mem.Slow {
		t.Fatalf("tier = %v err = %v", tier, err)
	}
	if f.sys.Tier(mem.Fast).Used() != fastBefore-addr.PageSize2M {
		t.Fatal("source frame not freed")
	}
	if f.sys.Tier(mem.Slow).Used() != addr.PageSize2M {
		t.Fatal("destination frame not charged")
	}
	if _, ok := f.tl.Lookup(v, 1); ok {
		t.Fatal("stale TLB translation survived migration")
	}
	if f.mig.Meter().Bytes(mem.Demotion) != addr.PageSize2M {
		t.Fatal("traffic not metered")
	}
}

func TestMoveHugeSplitRegionPreservesFlagsAndSplit(t *testing.T) {
	f := newFixture(t)
	v := addr.Virt2M(5)
	f.mapHuge(t, v, mem.Fast)
	if err := f.pt.Split(v); err != nil {
		t.Fatal(err)
	}
	child := v + 3*addr.Virt(addr.PageSize4K)
	f.pt.SetFlags(child, pagetable.Poisoned)

	if _, err := f.mig.MoveHuge(v, mem.Slow, 1, mem.Demotion); err != nil {
		t.Fatal(err)
	}
	// Still split, children contiguous in the new tier, poison preserved.
	if f.pt.Count4K() != addr.PagesPerHuge {
		t.Fatal("split mapping collapsed unexpectedly")
	}
	e0, _, _ := f.pt.Lookup(v)
	if mem.TierOf(e0.Frame) != mem.Slow {
		t.Fatal("children not in slow tier")
	}
	for i := 0; i < addr.PagesPerHuge; i++ {
		cv := v + addr.Virt(uint64(i)*addr.PageSize4K)
		ce, _, ok := f.pt.Lookup(cv)
		if !ok || ce.Frame != e0.Frame+addr.Phys(uint64(i)*addr.PageSize4K) {
			t.Fatalf("child %d not contiguous", i)
		}
	}
	ce, _, _ := f.pt.Lookup(child)
	if !ce.Flags.Has(pagetable.Poisoned) {
		t.Fatal("poison lost in migration")
	}
	// Collapse must work after migration (frames contiguous + aligned)
	// once the poison is cleared.
	f.pt.ClearFlags(child, pagetable.Poisoned)
	if err := f.pt.Collapse(v); err != nil {
		t.Fatalf("collapse after migration: %v", err)
	}
}

func TestMoveHugeErrors(t *testing.T) {
	f := newFixture(t)
	if _, err := f.mig.MoveHuge(addr.Virt2M(9), mem.Slow, 1, mem.Demotion); err == nil {
		t.Fatal("unmapped move should fail")
	}
	v := addr.Virt2M(1)
	f.mapHuge(t, v, mem.Fast)
	if _, err := f.mig.MoveHuge(v, mem.Fast, 1, mem.Demotion); err == nil {
		t.Fatal("same-tier move should fail")
	}
}

func TestMoveHugeDestinationFull(t *testing.T) {
	sys := mem.NewSystem(mem.DefaultDRAM(16<<20), mem.DefaultSlow(0))
	pt := pagetable.New()
	tl := tlb.New(tlb.DefaultConfig())
	mig := NewMigrator(sys, pt, tl, mem.NewMeter(0))
	p, err := sys.Tier(mem.Fast).Alloc2M()
	if err != nil {
		t.Fatal(err)
	}
	v := addr.Virt2M(1)
	if err := pt.Map2M(v, p, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := mig.MoveHuge(v, mem.Slow, 1, mem.Demotion); err == nil {
		t.Fatal("move into full tier should fail")
	}
	// Source mapping must be intact after the failed move.
	if tier, _ := mig.TierOfPage(v); tier != mem.Fast {
		t.Fatal("failed move disturbed the mapping")
	}
}

func TestMove4K(t *testing.T) {
	f := newFixture(t)
	p, err := f.sys.Tier(mem.Fast).Alloc4K()
	if err != nil {
		t.Fatal(err)
	}
	v := addr.Virt4K(40)
	if err := f.pt.Map4K(v, p, 0); err != nil {
		t.Fatal(err)
	}
	cost, err := f.mig.Move4K(v, mem.Slow, 1, mem.Promotion)
	if err != nil || cost <= 0 {
		t.Fatalf("Move4K: cost=%d err=%v", cost, err)
	}
	if tier, _ := f.mig.TierOfPage(v); tier != mem.Slow {
		t.Fatal("page not in slow tier")
	}
	if f.mig.Meter().Pages4K(mem.Promotion) != 1 {
		t.Fatal("4K move not metered")
	}
	// Move back: round trip.
	if _, err := f.mig.Move4K(v, mem.Fast, 1, mem.Promotion); err != nil {
		t.Fatal(err)
	}
	if f.sys.Tier(mem.Slow).Used() != 0 {
		t.Fatalf("slow tier leaked %d bytes", f.sys.Tier(mem.Slow).Used())
	}
}

func TestMove4KRejectsSplitChild(t *testing.T) {
	f := newFixture(t)
	v := addr.Virt2M(2)
	f.mapHuge(t, v, mem.Fast)
	if err := f.pt.Split(v); err != nil {
		t.Fatal(err)
	}
	if _, err := f.mig.Move4K(v, mem.Slow, 1, mem.Demotion); err == nil {
		t.Fatal("moving a split-THP child individually should fail")
	}
}

func TestMove4KRejectsHuge(t *testing.T) {
	f := newFixture(t)
	v := addr.Virt2M(2)
	f.mapHuge(t, v, mem.Fast)
	if _, err := f.mig.Move4K(v, mem.Slow, 1, mem.Demotion); err == nil {
		t.Fatal("Move4K of huge mapping should fail")
	}
}

func TestRoundTripHugePreservesData(t *testing.T) {
	// A demote/promote cycle must leave the mapping translating correctly
	// and both allocators balanced.
	f := newFixture(t)
	v := addr.Virt2M(7)
	f.mapHuge(t, v, mem.Fast)
	if _, err := f.mig.MoveHuge(v, mem.Slow, 1, mem.Demotion); err != nil {
		t.Fatal(err)
	}
	if _, err := f.mig.MoveHuge(v, mem.Fast, 1, mem.Promotion); err != nil {
		t.Fatal(err)
	}
	if tier, _ := f.mig.TierOfPage(v); tier != mem.Fast {
		t.Fatal("not back in fast tier")
	}
	if f.sys.Tier(mem.Slow).Used() != 0 {
		t.Fatal("slow tier leaked")
	}
	if _, ok := f.pt.Translate(v + 123); !ok {
		t.Fatal("translation lost")
	}
}

func TestCopyCostReflectsBandwidth(t *testing.T) {
	f := newFixture(t)
	v := addr.Virt2M(3)
	f.mapHuge(t, v, mem.Fast)
	cost, err := f.mig.MoveHuge(v, mem.Slow, 1, mem.Demotion)
	if err != nil {
		t.Fatal(err)
	}
	// 2MiB at the slow tier's 10GB/s plus per-page overhead ≈ 210us + 3us.
	bytes := float64(addr.PageSize2M)
	wantCopy := int64(bytes / 10e9 * 1e9)
	if cost < wantCopy || cost > wantCopy+2*DefaultPerPageOverheadNs {
		t.Fatalf("cost = %dns, want ~%dns", cost, wantCopy+DefaultPerPageOverheadNs)
	}
}
