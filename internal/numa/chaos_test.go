package numa

import (
	"errors"
	"reflect"
	"testing"

	"thermostat/internal/addr"
	"thermostat/internal/chaos"
	"thermostat/internal/mem"
	"thermostat/internal/pagetable"
)

// sysState is everything a failed migration must leave untouched: every leaf
// mapping with its exact flag word (page data is modeled by the frame
// identity, poison state by the Poisoned flag), per-tier occupancy, and
// metered traffic.
type sysState struct {
	Leaves   []leafSnap
	Used     []uint64
	Free     []uint64
	Demotion uint64
	Promote  uint64
}

type leafSnap struct {
	Base  addr.Virt
	Entry pagetable.Entry
	Level pagetable.Level
}

func captureState(f *fixture) sysState {
	var st sysState
	f.pt.Scan(func(base addr.Virt, e *pagetable.Entry, lvl pagetable.Level) {
		st.Leaves = append(st.Leaves, leafSnap{Base: base, Entry: *e, Level: lvl})
	})
	for i := 0; i < f.sys.NumTiers(); i++ {
		st.Used = append(st.Used, f.sys.Tier(mem.TierID(i)).Used())
		st.Free = append(st.Free, f.sys.Tier(mem.TierID(i)).Free())
	}
	st.Demotion = f.mig.Meter().Bytes(mem.Demotion)
	st.Promote = f.mig.Meter().Bytes(mem.Promotion)
	return st
}

// shape is the page-size/mapping variant under test.
type shape int

const (
	shapeHuge   shape = iota // single 2MB leaf, MoveHuge
	shapeSplit               // 512 split 4KB children over one 2MB frame, MoveHuge
	shapeNative              // natively-allocated 4KB page, Move4K
)

func (s shape) String() string {
	switch s {
	case shapeHuge:
		return "huge"
	case shapeSplit:
		return "split"
	default:
		return "native4k"
	}
}

// prepare maps one region of the given shape in tier src, with a spread of
// flag states (dirty/accessed, scattered poison on split children) so a lossy
// rollback would be visible in the snapshot diff.
func prepare(t *testing.T, f *fixture, s shape, src mem.TierID) addr.Virt {
	t.Helper()
	switch s {
	case shapeHuge:
		v := addr.Virt2M(7)
		f.mapHuge(t, v, src)
		f.pt.SetFlags(v, pagetable.Accessed|pagetable.Dirty)
		return v
	case shapeSplit:
		v := addr.Virt2M(9)
		f.mapHuge(t, v, src)
		if err := f.pt.Split(v); err != nil {
			t.Fatal(err)
		}
		for _, c := range []int{0, 3, 511} {
			f.pt.SetFlags(v+addr.Virt(uint64(c)*addr.PageSize4K), pagetable.Poisoned)
		}
		f.pt.SetFlags(v+addr.Virt(5*addr.PageSize4K), pagetable.Accessed|pagetable.Dirty)
		return v
	default:
		v := addr.Virt(0x40000000)
		p, err := f.sys.Tier(src).Alloc4K()
		if err != nil {
			t.Fatal(err)
		}
		if err := f.pt.Map4K(v, p, pagetable.Writable|pagetable.Dirty); err != nil {
			t.Fatal(err)
		}
		return v
	}
}

func (f *fixture) move(v addr.Virt, s shape, dst mem.TierID) error {
	var err error
	if s == shapeNative {
		_, err = f.mig.Move4K(v, dst, 1, mem.Demotion)
	} else {
		_, err = f.mig.MoveHuge(v, dst, 1, mem.Demotion)
	}
	return err
}

// TestRollbackProperty: for every ordered tier pair of a four-tier hierarchy,
// every page shape, and every migration fault site, an injected failure must
// leave the system reflect.DeepEqual-identical to its pre-move snapshot —
// page mappings, PTE flag words (incl. poison), tier occupancy, and metered
// traffic. For the split shape the mid-copy abort index is randomized across
// seeds so rollback is exercised at several partial-copy depths.
func TestRollbackProperty(t *testing.T) {
	t.Parallel()
	sites := []chaos.Site{chaos.DestFull, chaos.MigrateCopy, chaos.TLBShootdown}
	for _, s := range []shape{shapeHuge, shapeSplit, shapeNative} {
		for _, site := range sites {
			seeds := []uint64{1}
			if s == shapeSplit && site == chaos.MigrateCopy {
				// Vary the deterministic abort index: early, middle, late.
				seeds = []uint64{1, 2, 3, 4, 5, 6, 7, 8}
			}
			for _, seed := range seeds {
				f := fourTierFixture(t)
				n := f.sys.NumTiers()
				for srcI := 0; srcI < n; srcI++ {
					for dstI := 0; dstI < n; dstI++ {
						if srcI == dstI {
							continue
						}
						src, dst := mem.TierID(srcI), mem.TierID(dstI)
						f := fourTierFixture(t)
						v := prepare(t, f, s, src)
						before := captureState(f)

						inj := chaos.New(chaos.Config{
							Seed:      seed,
							SiteRates: map[chaos.Site]float64{site: 1},
						})
						f.mig.SetInjector(inj, func() int64 { return 12345 })

						err := f.move(v, s, dst)
						if err == nil {
							t.Fatalf("%s %d->%d site=%s: move succeeded despite forced fault", s, src, dst, site)
						}
						if !chaos.IsInjected(err) {
							t.Fatalf("%s %d->%d site=%s: error not injected: %v", s, src, dst, site, err)
						}
						if site == chaos.DestFull && !errors.Is(err, mem.ErrOutOfMemory) {
							t.Fatalf("dest-full fault does not unwrap to ErrOutOfMemory: %v", err)
						}

						after := captureState(f)
						if !reflect.DeepEqual(before, after) {
							t.Fatalf("%s %d->%d site=%s seed=%d: state diverged after rollback\nbefore: %+v\nafter:  %+v",
								s, src, dst, site, seed, before, after)
						}
						if site != chaos.DestFull && f.mig.Rollbacks() == 0 {
							t.Fatalf("%s %d->%d site=%s: rollback not counted", s, src, dst, site)
						}

						// The transaction must be repeatable: with the
						// injector removed the same move commits cleanly.
						f.mig.SetInjector(nil, nil)
						if err := f.move(v, s, dst); err != nil {
							t.Fatalf("%s %d->%d: move after rollback failed: %v", s, src, dst, err)
						}
						if got, err := f.mig.TierOfPage(v); err != nil || got != dst {
							t.Fatalf("%s %d->%d: page in tier %v after commit (err=%v)", s, src, dst, got, err)
						}
					}
				}
			}
		}
	}
}

// TestRollbackSplitAbortDepths pins that the randomized seeds above actually
// hit distinct abort indices, including a partial copy (0 < failAt), so the
// reverse-order undo path is genuinely exercised and not just the
// nothing-copied-yet case.
func TestRollbackSplitAbortDepths(t *testing.T) {
	t.Parallel()
	depths := map[int]bool{}
	for seed := uint64(1); seed <= 8; seed++ {
		inj := chaos.New(chaos.Config{Seed: seed, SiteRates: map[chaos.Site]float64{chaos.MigrateCopy: 1}})
		if inj.Inject(chaos.MigrateCopy, 0) == nil {
			t.Fatal("forced site did not fire")
		}
		depths[inj.AbortIndex(addr.PagesPerHuge)] = true
	}
	if len(depths) < 3 {
		t.Fatalf("abort indices not diverse across seeds: %v", depths)
	}
	nonzero := false
	for d := range depths {
		if d > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatalf("no partial-copy abort depth exercised: %v", depths)
	}
}

// TestRollbackTransientThenCommit drives a two-tier demote through a
// transient mid-copy fault at rate 0.5 until both outcomes have been seen,
// checking the migrator stays consistent across interleaved failures and
// commits on the same region.
func TestRollbackTransientThenCommit(t *testing.T) {
	t.Parallel()
	f := newFixture(t)
	v := addr.Virt2M(2)
	f.mapHuge(t, v, mem.Fast)
	if err := f.pt.Split(v); err != nil {
		t.Fatal(err)
	}
	f.pt.SetFlags(v+addr.Virt(8*addr.PageSize4K), pagetable.Poisoned)
	inj := chaos.New(chaos.Config{Seed: 42, SiteRates: map[chaos.Site]float64{chaos.MigrateCopy: 0.5}})
	f.mig.SetInjector(inj, func() int64 { return 0 })

	failures := 0
	dst := mem.Slow
	cur := mem.Fast
	for i := 0; i < 64; i++ {
		if err := f.move(v, shapeSplit, dst); err != nil {
			if !chaos.IsInjected(err) {
				t.Fatalf("unexpected error: %v", err)
			}
			failures++
			continue
		}
		cur, dst = dst, cur
		// Poison must survive both rollbacks and commits.
		e, _, ok := f.pt.Lookup(v + addr.Virt(8*addr.PageSize4K))
		if !ok || !e.Flags.Has(pagetable.Poisoned) {
			t.Fatalf("iteration %d: poison lost (ok=%v flags=%v)", i, ok, e.Flags)
		}
	}
	if failures == 0 {
		t.Fatal("rate-0.5 injector never fired in 64 moves")
	}
	if f.mig.Rollbacks() != uint64(failures) {
		t.Fatalf("rollbacks = %d, failures = %d", f.mig.Rollbacks(), failures)
	}
	used := f.sys.Tier(mem.Fast).Used() + f.sys.Tier(mem.Slow).Used()
	if used != addr.PageSize2M {
		t.Fatalf("occupancy leaked: total used = %d, want one 2MB frame", used)
	}
}
