package numa

import (
	"testing"
	"testing/quick"

	"thermostat/internal/addr"
	"thermostat/internal/mem"
	"thermostat/internal/pagetable"
	"thermostat/internal/rng"
	"thermostat/internal/tlb"
)

// fourTierFixture builds a migrator over a DRAM/CXL/NVM/slow hierarchy so the
// properties below can exercise every ordered tier pair, not just the paper's
// fast<->slow two.
func fourTierFixture(t *testing.T) *fixture {
	t.Helper()
	sys, err := mem.NewHierarchy(
		mem.DefaultDRAM(16<<20),
		mem.DefaultCXL(16<<20),
		mem.DefaultNVM(16<<20),
		mem.DefaultSlow(16<<20),
	)
	if err != nil {
		t.Fatal(err)
	}
	pt := pagetable.New()
	tl := tlb.New(tlb.DefaultConfig())
	return &fixture{sys: sys, pt: pt, tl: tl, mig: NewMigrator(sys, pt, tl, mem.NewMeter(0))}
}

// checkRegion verifies the leaf mappings backing the 2MB region at v: the
// region is either one aligned huge leaf or 512 contiguous 4KB children over
// one 2MB frame, every leaf's frame lives in tier want, and the recorded
// flags survived migration.
func checkRegion(t *testing.T, f *fixture, v addr.Virt, want mem.TierID, split bool, poisoned map[int]bool) {
	t.Helper()
	if !split {
		e, lvl, ok := f.pt.Lookup(v)
		if !ok || lvl != pagetable.Level2M {
			t.Fatalf("region %s: huge leaf lost (ok=%v lvl=%v)", v, ok, lvl)
		}
		if e.Frame.Base2M() != e.Frame {
			t.Fatalf("region %s: unaligned huge frame %s", v, e.Frame)
		}
		if got := f.sys.TierOf(e.Frame); got != want {
			t.Fatalf("region %s: in tier %v, want %v", v, got, want)
		}
		return
	}
	base := addr.Phys(0)
	for i := 0; i < addr.PagesPerHuge; i++ {
		cv := v + addr.Virt(uint64(i)*addr.PageSize4K)
		e, lvl, ok := f.pt.Lookup(cv)
		if !ok || lvl != pagetable.Level4K {
			t.Fatalf("region %s: split child %d lost (ok=%v lvl=%v)", v, i, ok, lvl)
		}
		if i == 0 {
			base = e.Frame.Base2M()
			if got := f.sys.TierOf(base); got != want {
				t.Fatalf("region %s: in tier %v, want %v", v, got, want)
			}
		}
		if e.Frame != base+addr.Phys(uint64(i)*addr.PageSize4K) {
			t.Fatalf("region %s: child %d frame %s breaks contiguity over %s", v, i, e.Frame, base)
		}
		if e.Flags.Has(pagetable.Poisoned) != poisoned[i] {
			t.Fatalf("region %s: child %d poison flag = %v, want %v", v, i, e.Flags.Has(pagetable.Poisoned), poisoned[i])
		}
	}
}

// TestMoveEveryTierPairProperty drives random migrations of huge, split and
// native-4K pages between every ordered tier pair of a four-tier hierarchy
// and checks, after every move, that mappings stay consistent (contiguity,
// alignment, flags) and that frame accounting balances: each tier's Used()
// equals exactly the bytes mapped there.
func TestMoveEveryTierPairProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		f := fourTierFixture(t)
		r := rng.New(seed)
		nTiers := f.sys.NumTiers()

		type region struct {
			v        addr.Virt
			tier     mem.TierID
			split    bool
			poisoned map[int]bool
		}
		type native struct {
			v    addr.Virt
			tier mem.TierID
		}

		// Map six 2MB regions (half split with scattered poison) plus four
		// native 4KB pages, spread across the tiers.
		var regions []*region
		for i := 0; i < 6; i++ {
			tier := mem.TierID(int(r.Uint64n(uint64(nTiers))))
			v := addr.Virt2M(uint64(i))
			p, err := f.sys.Tier(tier).Alloc2M()
			if err != nil {
				t.Fatal(err)
			}
			if err := f.pt.Map2M(v, p, pagetable.Writable); err != nil {
				t.Fatal(err)
			}
			reg := &region{v: v, tier: tier, poisoned: map[int]bool{}}
			if i%2 == 0 {
				if err := f.pt.Split(v); err != nil {
					t.Fatal(err)
				}
				reg.split = true
				for j := 0; j < 3; j++ {
					c := int(r.Uint64n(uint64(addr.PagesPerHuge)))
					f.pt.SetFlags(reg.v+addr.Virt(uint64(c)*addr.PageSize4K), pagetable.Poisoned)
					reg.poisoned[c] = true
				}
			}
			regions = append(regions, reg)
		}
		var natives []*native
		for i := 0; i < 4; i++ {
			tier := mem.TierID(int(r.Uint64n(uint64(nTiers))))
			v := addr.Virt2M(100) + addr.Virt(uint64(i)*addr.PageSize4K)
			p, err := f.sys.Tier(tier).Alloc4K()
			if err != nil {
				t.Fatal(err)
			}
			if err := f.pt.Map4K(v, p, pagetable.Writable); err != nil {
				t.Fatal(err)
			}
			natives = append(natives, &native{v: v, tier: tier})
		}

		checkAccounting := func() {
			mapped := make([]uint64, nTiers)
			for _, reg := range regions {
				mapped[reg.tier] += addr.PageSize2M
			}
			for _, n := range natives {
				mapped[n.tier] += addr.PageSize4K
			}
			for i := 0; i < nTiers; i++ {
				used := f.sys.Tier(mem.TierID(i)).Used()
				if used != mapped[i] {
					t.Fatalf("tier %d: Used() = %d, mapped = %d", i, used, mapped[i])
				}
			}
		}

		// Random walk: each step moves one page to a random *different*
		// tier, so over the run every ordered (src, dst) pair is exercised.
		for step := 0; step < 60; step++ {
			if r.Uint64n(4) < 3 {
				reg := regions[int(r.Uint64n(uint64(len(regions))))]
				dst := mem.TierID(int(r.Uint64n(uint64(nTiers))))
				if dst == reg.tier {
					continue
				}
				kind := mem.Demotion
				if dst < reg.tier {
					kind = mem.Promotion
				}
				cost, err := f.mig.MoveHuge(reg.v, dst, 1, kind)
				if err != nil {
					t.Fatalf("MoveHuge %s %v->%v: %v", reg.v, reg.tier, dst, err)
				}
				if cost <= 0 {
					t.Fatalf("MoveHuge cost = %d", cost)
				}
				reg.tier = dst
				checkRegion(t, f, reg.v, reg.tier, reg.split, reg.poisoned)
			} else {
				n := natives[int(r.Uint64n(uint64(len(natives))))]
				dst := mem.TierID(int(r.Uint64n(uint64(nTiers))))
				if dst == n.tier {
					continue
				}
				kind := mem.Demotion
				if dst < n.tier {
					kind = mem.Promotion
				}
				if _, err := f.mig.Move4K(n.v, dst, 1, kind); err != nil {
					t.Fatalf("Move4K %s %v->%v: %v", n.v, n.tier, dst, err)
				}
				n.tier = dst
				if got, err := f.mig.TierOfPage(n.v); err != nil || got != dst {
					t.Fatalf("native %s: tier %v err %v, want %v", n.v, got, err, dst)
				}
			}
			checkAccounting()
		}

		// Every region is still fully intact at the end.
		for _, reg := range regions {
			checkRegion(t, f, reg.v, reg.tier, reg.split, reg.poisoned)
		}

		// The meter's pair matrix only ever names configured tiers, and the
		// per-pair totals sum to the legacy aggregates.
		var pairSum uint64
		for _, p := range f.mig.Meter().Pairs() {
			if int(p.Src) >= nTiers || int(p.Dst) >= nTiers || p.Src == p.Dst {
				t.Fatalf("meter recorded impossible pair %v", p)
			}
			pairSum += f.mig.Meter().PairTraffic(p.Src, p.Dst).Bytes
		}
		if total := f.mig.Meter().TotalBytes(); pairSum != total {
			t.Fatalf("pair matrix sums to %d, aggregate = %d", pairSum, total)
		}
		return true
	}
	if err := quick.Check(func(seed uint64) bool { return prop(seed) }, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
