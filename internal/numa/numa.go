// Package numa provides the page-migration mechanism Thermostat uses to move
// data between memory tiers. The paper exposes slow memory to the guest as a
// separate NUMA zone and moves pages with the kernel's existing migration
// machinery; here each mem.Tier is a zone and the Migrator reproduces
// migrate_pages semantics: allocate in the destination, copy, remap, flush
// the TLB, free the source frame.
//
// The Migrator moves pages between any ordered tier pair of an N-tier
// hierarchy; copy cost is bounded by the slower endpoint's bandwidth. It
// meters traffic by direction and by (src, dst) pair so the harness can
// report the paper's Table 3 (migration rate vs. false-classification rate)
// and the N-tier per-pair traffic matrix.
package numa

import (
	"fmt"

	"thermostat/internal/addr"
	"thermostat/internal/chaos"
	"thermostat/internal/mem"
	"thermostat/internal/pagetable"
	"thermostat/internal/tlb"
)

// DefaultPerPageOverheadNs approximates the kernel's fixed migrate_pages
// bookkeeping cost per page (unmap, copy setup, remap).
const DefaultPerPageOverheadNs = 3000

// Observer is notified after every successful page migration — the
// telemetry layer's attachment point. It must not migrate pages itself.
type Observer func(v addr.Virt, src, dst mem.TierID, bytes uint64, kind mem.TrafficKind, costNs int64)

// Migrator moves pages between tiers. Every move is transactional: it either
// commits fully (remap + shootdown + source freed + traffic metered) or
// rolls back so page data, PTE flags, poison state, and tier occupancy are
// exactly as before the attempt.
type Migrator struct {
	sys   *mem.System
	pt    *pagetable.Table
	tl    *tlb.TLB
	meter *mem.Meter

	observer Observer

	inj       *chaos.Injector
	clock     func() int64
	rollbacks uint64

	perPageOverheadNs int64
}

// NewMigrator builds a migrator over the given memory system, page table and
// TLB. Traffic is recorded into meter.
func NewMigrator(sys *mem.System, pt *pagetable.Table, tl *tlb.TLB, meter *mem.Meter) *Migrator {
	return &Migrator{
		sys: sys, pt: pt, tl: tl, meter: meter,
		perPageOverheadNs: DefaultPerPageOverheadNs,
	}
}

// Meter returns the traffic meter.
func (m *Migrator) Meter() *mem.Meter { return m.meter }

// SetObserver installs fn to be called after every successful migration
// (nil removes). The machine uses this to emit telemetry Migrated events
// with its virtual clock.
func (m *Migrator) SetObserver(fn Observer) { m.observer = fn }

// SetInjector installs a chaos injector (nil removes) and the virtual-clock
// source used to stamp injected faults. With a nil injector the migrator's
// behavior — including its allocation profile — is unchanged.
func (m *Migrator) SetInjector(inj *chaos.Injector, clock func() int64) {
	m.inj = inj
	m.clock = clock
}

// Rollbacks returns how many migration transactions were aborted after
// destination allocation and fully undone.
func (m *Migrator) Rollbacks() uint64 { return m.rollbacks }

func (m *Migrator) now() int64 {
	if m.clock == nil {
		return 0
	}
	return m.clock()
}

// undoRec captures one leaf's pre-move mapping so rollback can restore it.
type undoRec struct {
	v     addr.Virt
	frame addr.Phys
	flags pagetable.Flags
}

// abort rolls back a partially-applied move: already-remapped leaves are
// remapped onto their original frames with their exact prior flag words
// (Remap clears Accessed|Dirty, so flags are restored through EntryRef),
// stale translations are shot down, and the destination frame is freed.
// Invalidate is idempotent, so re-shooting a leaf invalidated on the forward
// path is harmless.
func (m *Migrator) abort(dst mem.TierID, frame addr.Phys, huge bool, log []undoRec, vpid tlb.VPID) {
	for i := len(log) - 1; i >= 0; i-- {
		u := log[i]
		if _, err := m.pt.Remap(u.v, u.frame); err != nil {
			// The leaf was remapped moments ago; undoing it cannot fail.
			panic(fmt.Sprintf("numa: rollback remap of %s failed: %v", u.v, err))
		}
		if e, _, ok := m.pt.EntryRef(u.v); ok {
			e.Flags = u.flags
		}
		m.tl.Invalidate(u.v, vpid)
	}
	if huge {
		m.sys.Tier(dst).Free2M(frame)
	} else {
		m.sys.Tier(dst).Free4K(frame)
	}
	m.rollbacks++
}

// copyCost returns the virtual-time cost of copying n bytes between tiers,
// bounded by the slower tier's bandwidth.
func (m *Migrator) copyCost(src, dst mem.TierID, n uint64) int64 {
	bw := m.sys.Tier(src).Spec().Bandwidth
	if b := m.sys.Tier(dst).Spec().Bandwidth; b < bw {
		bw = b
	}
	if bw <= 0 {
		return m.perPageOverheadNs
	}
	return int64(float64(n)/bw*1e9) + m.perPageOverheadNs
}

// TierOfPage returns the tier currently backing the leaf mapping v.
func (m *Migrator) TierOfPage(v addr.Virt) (mem.TierID, error) {
	e, _, ok := m.pt.Lookup(v)
	if !ok {
		return 0, fmt.Errorf("numa: %s unmapped", v)
	}
	return m.sys.TierOf(e.Frame), nil
}

// MoveHuge migrates the entire 2MB region containing v to tier dst. The
// region may be mapped as a single huge leaf or as 512 split 4KB leaves over
// one physical 2MB frame (a sampled page); in the split case the mapping
// stays split — children are remapped onto the new frame preserving their
// flags (including Poisoned, so §3.5 monitoring survives migration).
//
// Returns the virtual-time cost. Migrating a page already in dst is an
// error; callers decide placement first.
func (m *Migrator) MoveHuge(v addr.Virt, dst mem.TierID, vpid tlb.VPID, kind mem.TrafficKind) (int64, error) {
	hv := v.Base2M()
	e, lvl, ok := m.pt.Lookup(hv)
	if !ok {
		return 0, fmt.Errorf("numa: MoveHuge of unmapped %s", hv)
	}
	src := m.sys.TierOf(e.Frame)
	if src == dst {
		return 0, fmt.Errorf("numa: %s already in %s tier", hv, dst)
	}
	var now int64
	if m.inj != nil {
		now = m.now()
	}
	if f := m.inj.Inject(chaos.DestFull, now); f != nil {
		f.Cause = mem.ErrOutOfMemory
		return 0, fmt.Errorf("numa: MoveHuge %s: %w", hv, f)
	}
	newFrame, err := m.sys.Tier(dst).Alloc2M()
	if err != nil {
		return 0, fmt.Errorf("numa: MoveHuge %s: %w", hv, err)
	}

	oldBase := e.Frame.Base2M()
	switch lvl {
	case pagetable.Level2M:
		if f := m.inj.Inject(chaos.MigrateCopy, now); f != nil {
			m.abort(dst, newFrame, true, nil, vpid)
			return 0, fmt.Errorf("numa: MoveHuge %s: %w", hv, f)
		}
		oldFlags := e.Flags
		if _, err := m.pt.Remap(hv, newFrame); err != nil {
			m.abort(dst, newFrame, true, nil, vpid)
			return 0, err
		}
		if f := m.inj.Inject(chaos.TLBShootdown, now); f != nil {
			m.abort(dst, newFrame, true, []undoRec{{hv, oldBase, oldFlags}}, vpid)
			return 0, fmt.Errorf("numa: MoveHuge %s: %w", hv, f)
		}
		m.tl.Invalidate(hv, vpid)
	case pagetable.Level4K:
		// Split region: verify contiguity over the old frame, then remap
		// every child.
		for i := 0; i < addr.PagesPerHuge; i++ {
			cv := hv + addr.Virt(uint64(i)*addr.PageSize4K)
			ce, clvl, ok := m.pt.Lookup(cv)
			if !ok || clvl != pagetable.Level4K {
				m.abort(dst, newFrame, true, nil, vpid)
				return 0, fmt.Errorf("numa: MoveHuge %s: child %d not 4K-mapped", hv, i)
			}
			if ce.Frame.Base2M() != oldBase {
				m.abort(dst, newFrame, true, nil, vpid)
				return 0, fmt.Errorf("numa: MoveHuge %s: child %d not contiguous", hv, i)
			}
		}
		// Mid-copy abort point: when MigrateCopy fires, the transaction
		// dies at a deterministic child index with the first failAt
		// children already remapped — rollback must restore them.
		failAt := -1
		var copyFault *chaos.Fault
		if f := m.inj.Inject(chaos.MigrateCopy, now); f != nil {
			failAt = m.inj.AbortIndex(addr.PagesPerHuge)
			copyFault = f
		}
		var undo []undoRec
		if m.inj != nil {
			undo = make([]undoRec, 0, addr.PagesPerHuge)
		}
		for i := 0; i < addr.PagesPerHuge; i++ {
			cv := hv + addr.Virt(uint64(i)*addr.PageSize4K)
			if i == failAt {
				m.abort(dst, newFrame, true, undo, vpid)
				return 0, fmt.Errorf("numa: MoveHuge %s: %w", hv, copyFault)
			}
			ce, _, _ := m.pt.Lookup(cv)
			poisoned := ce.Flags.Has(pagetable.Poisoned)
			if undo != nil {
				undo = append(undo, undoRec{cv, ce.Frame, ce.Flags})
			}
			if _, err := m.pt.Remap(cv, newFrame+addr.Phys(uint64(i)*addr.PageSize4K)); err != nil {
				// Unreachable after the verification pass; fail loudly.
				panic(fmt.Sprintf("numa: remap of verified child failed: %v", err))
			}
			if poisoned {
				m.pt.SetFlags(cv, pagetable.Poisoned)
			}
			m.tl.Invalidate(cv, vpid)
		}
		if f := m.inj.Inject(chaos.TLBShootdown, now); f != nil {
			m.abort(dst, newFrame, true, undo, vpid)
			return 0, fmt.Errorf("numa: MoveHuge %s: %w", hv, f)
		}
	}

	m.sys.Tier(src).Free2M(oldBase)
	m.meter.RecordPair(kind, src, dst, addr.PageSize2M)
	cost := m.copyCost(src, dst, addr.PageSize2M)
	if m.observer != nil {
		m.observer(hv, src, dst, addr.PageSize2M, kind, cost)
	}
	return cost, nil
}

// Move4K migrates a single natively-4K-mapped page (one whose frame was
// allocated at 4KB grain, e.g. file-cache mappings) to tier dst.
func (m *Migrator) Move4K(v addr.Virt, dst mem.TierID, vpid tlb.VPID, kind mem.TrafficKind) (int64, error) {
	pv := v.Base4K()
	e, lvl, ok := m.pt.Lookup(pv)
	if !ok {
		return 0, fmt.Errorf("numa: Move4K of unmapped %s", pv)
	}
	if lvl != pagetable.Level4K {
		return 0, fmt.Errorf("numa: Move4K of huge-mapped %s", pv)
	}
	if e.Flags.Has(pagetable.SplitSampled) {
		return 0, fmt.Errorf("numa: Move4K of split-THP child %s (use MoveHuge)", pv)
	}
	src := m.sys.TierOf(e.Frame)
	if src == dst {
		return 0, fmt.Errorf("numa: %s already in %s tier", pv, dst)
	}
	var now int64
	if m.inj != nil {
		now = m.now()
	}
	if f := m.inj.Inject(chaos.DestFull, now); f != nil {
		f.Cause = mem.ErrOutOfMemory
		return 0, fmt.Errorf("numa: Move4K %s: %w", pv, f)
	}
	newFrame, err := m.sys.Tier(dst).Alloc4K()
	if err != nil {
		return 0, fmt.Errorf("numa: Move4K %s: %w", pv, err)
	}
	if f := m.inj.Inject(chaos.MigrateCopy, now); f != nil {
		m.abort(dst, newFrame, false, nil, vpid)
		return 0, fmt.Errorf("numa: Move4K %s: %w", pv, f)
	}
	oldFrame, oldFlags := e.Frame.Base4K(), e.Flags
	poisoned := e.Flags.Has(pagetable.Poisoned)
	if _, err := m.pt.Remap(pv, newFrame); err != nil {
		m.abort(dst, newFrame, false, nil, vpid)
		return 0, err
	}
	if poisoned {
		m.pt.SetFlags(pv, pagetable.Poisoned)
	}
	if f := m.inj.Inject(chaos.TLBShootdown, now); f != nil {
		m.abort(dst, newFrame, false, []undoRec{{pv, oldFrame, oldFlags}}, vpid)
		return 0, fmt.Errorf("numa: Move4K %s: %w", pv, f)
	}
	m.tl.Invalidate(pv, vpid)
	m.sys.Tier(src).Free4K(oldFrame)
	m.meter.RecordPair(kind, src, dst, addr.PageSize4K)
	cost := m.copyCost(src, dst, addr.PageSize4K)
	if m.observer != nil {
		m.observer(pv, src, dst, addr.PageSize4K, kind, cost)
	}
	return cost, nil
}
