package cgroup

import (
	"math"
	"sync"
	"testing"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTargetSlowAccessRateMatchesPaper(t *testing.T) {
	// "For a 3% tolerable slowdown and 1us slow memory access latency, the
	// target slow memory access rate is 30K accesses/sec." (Figure 3)
	got := Default().TargetSlowAccessRate()
	if math.Abs(got-30000) > 1e-6 {
		t.Fatalf("target rate = %v, want 30000", got)
	}
	// 10% at 1us -> 100K/s.
	p := Default()
	p.TolerableSlowdownPct = 10
	if got := p.TargetSlowAccessRate(); math.Abs(got-100000) > 1e-6 {
		t.Fatalf("10%% target rate = %v, want 100000", got)
	}
	// 3% at 2us -> 15K/s (slower memory halves the budget).
	p = Default()
	p.SlowMemLatencyNs = 2000
	if got := p.TargetSlowAccessRate(); math.Abs(got-15000) > 1e-6 {
		t.Fatalf("2us target rate = %v, want 15000", got)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.TolerableSlowdownPct = 0 },
		func(p *Params) { p.TolerableSlowdownPct = 100 },
		func(p *Params) { p.SamplePeriodNs = 0 },
		func(p *Params) { p.SampleFraction = 0 },
		func(p *Params) { p.SampleFraction = 1.5 },
		func(p *Params) { p.MaxPoisonPerHuge = 0 },
		func(p *Params) { p.SlowMemLatencyNs = -1 },
	}
	for i, mutate := range bad {
		p := Default()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestGroupLifecycle(t *testing.T) {
	g, err := NewGroup("benchmarks", Default())
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "benchmarks" {
		t.Fatal("name lost")
	}
	if _, err := NewGroup("bad", Params{}); err == nil {
		t.Fatal("zero params accepted")
	}
	// Runtime retuning.
	if err := g.SetTolerableSlowdown(6); err != nil {
		t.Fatal(err)
	}
	if g.Params().TolerableSlowdownPct != 6 {
		t.Fatal("retune not visible")
	}
	if err := g.SetTolerableSlowdown(-1); err == nil {
		t.Fatal("invalid retune accepted")
	}
	if g.Params().TolerableSlowdownPct != 6 {
		t.Fatal("failed retune mutated params")
	}
	p := g.Params()
	p.SampleFraction = 0.2
	if err := g.Update(p); err != nil {
		t.Fatal(err)
	}
	if g.Params().SampleFraction != 0.2 {
		t.Fatal("Update not visible")
	}
}

func TestGroupConcurrentAccess(t *testing.T) {
	g, err := NewGroup("c", Default())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = g.SetTolerableSlowdown(3 + float64(j%5))
			}
		}()
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				p := g.Params()
				if p.TolerableSlowdownPct < 3 || p.TolerableSlowdownPct > 7 {
					t.Errorf("torn read: %v", p.TolerableSlowdownPct)
					return
				}
			}
		}()
	}
	wg.Wait()
}
