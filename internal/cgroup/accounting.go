// Per-group memory accounting, modelled on the kernel's memory.current /
// memory.max pair. The fleet arbiter uses it to track each tenant's
// fast-tier residency against its DRAM grant: the root group's limit is the
// machine's DRAM pool, each tenant is a child whose limit is its current
// grant, and every page that lands in (or leaves) the top tier is charged
// (uncharged) through the whole chain.
//
// Two charge flavours exist on purpose:
//
//   - TryCharge is the admission path: it atomically checks the limit at
//     every ancestor and either applies the charge at all levels or none.
//     The arbiter uses it when a tenant arrives, so the pool can refuse an
//     admission that would not fit.
//   - Charge is the residency-mirror path: it applies unconditionally,
//     because it records what the hardware already did (a migration that
//     has happened cannot be refused). A group driven over its limit this
//     way reports the excess via OverLimit, which is the arbiter's squeeze
//     signal.
package cgroup

import (
	"errors"
	"fmt"
)

// ErrOverLimit is returned by TryCharge when the charge would exceed the
// limit of the group or any of its ancestors.
var ErrOverLimit = errors.New("cgroup: charge exceeds limit")

// NewChild validates p and creates a child group that charges through g.
func (g *Group) NewChild(name string, p Params) (*Group, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Group{name: name, parent: g, params: p}, nil
}

// Parent returns the group charged above this one (nil for a root).
func (g *Group) Parent() *Group { return g.parent }

// SetLimit replaces the accounting limit (0 = unlimited). Lowering the
// limit below current usage is allowed — exactly like writing memory.max —
// and simply leaves the group over limit until usage drains.
func (g *Group) SetLimit(bytes uint64) {
	g.mu.Lock()
	g.limit = bytes
	g.mu.Unlock()
}

// Limit returns the current accounting limit (0 = unlimited).
func (g *Group) Limit() uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.limit
}

// Usage returns the bytes currently charged to the group.
func (g *Group) Usage() uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.usage
}

// OverLimit returns how many charged bytes exceed the group's own limit
// (zero when unlimited or under limit).
func (g *Group) OverLimit() uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.limit == 0 || g.usage <= g.limit {
		return 0
	}
	return g.usage - g.limit
}

// chain returns the group and its ancestors, leaf first. Every multi-group
// operation locks in this order, so concurrent charges on sibling subtrees
// cannot deadlock on the shared ancestors.
func (g *Group) chain() []*Group {
	var cs []*Group
	for n := g; n != nil; n = n.parent {
		cs = append(cs, n)
	}
	return cs
}

// TryCharge atomically charges bytes to the group and every ancestor, or —
// if the charge would push any of them over its limit — charges nothing and
// returns ErrOverLimit naming the level that refused.
func (g *Group) TryCharge(bytes uint64) error {
	cs := g.chain()
	for _, n := range cs {
		n.mu.Lock()
	}
	defer func() {
		for _, n := range cs {
			n.mu.Unlock()
		}
	}()
	for _, n := range cs {
		if n.limit != 0 && n.usage+bytes > n.limit {
			return fmt.Errorf("%w: %s at %d/%d +%d", ErrOverLimit, n.name, n.usage, n.limit, bytes)
		}
	}
	for _, n := range cs {
		n.usage += bytes
	}
	return nil
}

// Charge records bytes against the group and every ancestor without
// checking limits: it mirrors residency the machine already holds. Use
// OverLimit afterwards to detect pressure.
func (g *Group) Charge(bytes uint64) {
	for _, n := range g.chain() {
		n.mu.Lock()
		n.usage += bytes
		n.mu.Unlock()
	}
}

// Uncharge releases bytes from the group and every ancestor. Releasing more
// than is charged at any level is a bookkeeping bug and panics, in the same
// spirit as the allocator's double-free panic.
func (g *Group) Uncharge(bytes uint64) {
	cs := g.chain()
	for _, n := range cs {
		n.mu.Lock()
	}
	defer func() {
		for _, n := range cs {
			n.mu.Unlock()
		}
	}()
	for _, n := range cs {
		if bytes > n.usage {
			panic(fmt.Sprintf("cgroup: uncharge %d exceeds usage %d on %q", bytes, n.usage, n.name))
		}
	}
	for _, n := range cs {
		n.usage -= bytes
	}
}
