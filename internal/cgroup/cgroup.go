// Package cgroup models the Linux memory-cgroup control surface Thermostat
// hangs its knobs on (§3.1): all processes in a group share the Thermostat
// parameters — sampling period, sample fraction, poison budget, and the
// single headline input, the tolerable slowdown — and an administrator can
// retune them at runtime (§5.1 varies the slowdown target live).
package cgroup

import (
	"fmt"
	"sync"
)

// Params are the Thermostat knobs exposed through the cgroup filesystem.
type Params struct {
	// TolerableSlowdownPct is the user-specified maximum slowdown (the
	// paper's single input; 3 in the evaluation).
	TolerableSlowdownPct float64
	// SamplePeriodNs is the sampling period (scan interval); the paper
	// uses 30s and finds ≥10s has negligible overhead (§4.4).
	SamplePeriodNs int64
	// SampleFraction is the fraction of huge pages sampled per period
	// (0.05 in the evaluation).
	SampleFraction float64
	// MaxPoisonPerHuge caps poisoned 4KB pages per sampled huge page
	// (K = 50 in the evaluation).
	MaxPoisonPerHuge int
	// SlowMemLatencyNs is the assumed slow-memory access latency ts used
	// to translate the slowdown target into an access-rate budget (1us).
	SlowMemLatencyNs int64
}

// Default returns the paper's evaluated parameters.
func Default() Params {
	return Params{
		TolerableSlowdownPct: 3,
		SamplePeriodNs:       30 * 1e9,
		SampleFraction:       0.05,
		MaxPoisonPerHuge:     50,
		SlowMemLatencyNs:     1000,
	}
}

// Validate rejects out-of-range parameters.
func (p Params) Validate() error {
	if p.TolerableSlowdownPct <= 0 || p.TolerableSlowdownPct >= 100 {
		return fmt.Errorf("cgroup: tolerable slowdown %v%% outside (0, 100)", p.TolerableSlowdownPct)
	}
	if p.SamplePeriodNs <= 0 {
		return fmt.Errorf("cgroup: non-positive sample period %d", p.SamplePeriodNs)
	}
	if p.SampleFraction <= 0 || p.SampleFraction > 1 {
		return fmt.Errorf("cgroup: sample fraction %v outside (0, 1]", p.SampleFraction)
	}
	if p.MaxPoisonPerHuge <= 0 {
		return fmt.Errorf("cgroup: non-positive poison budget %d", p.MaxPoisonPerHuge)
	}
	if p.SlowMemLatencyNs <= 0 {
		return fmt.Errorf("cgroup: non-positive slow-memory latency %d", p.SlowMemLatencyNs)
	}
	return nil
}

// TargetSlowAccessRate translates the slowdown budget into the maximum
// tolerable aggregate access rate to slow memory, in accesses/second (§3.4):
// x% slowdown at ts per access allows x/(100·ts) accesses per second. With
// the paper's 3% and 1us this is the 30K accesses/sec line of Figure 3.
func (p Params) TargetSlowAccessRate() float64 {
	return p.TolerableSlowdownPct / 100 / (float64(p.SlowMemLatencyNs) * 1e-9)
}

// Group is one named cgroup whose parameters can be retuned at runtime.
// Reads and writes are safe for concurrent use.
//
// Groups form a hierarchy: a child created with NewChild charges its memory
// usage through every ancestor, mirroring the kernel's memory.current /
// memory.max propagation. See accounting.go for the charge protocol.
type Group struct {
	name   string
	parent *Group

	mu     sync.RWMutex
	params Params
	limit  uint64 // accounting limit in bytes; 0 = unlimited
	usage  uint64 // bytes currently charged
}

// NewGroup validates p and creates a group.
func NewGroup(name string, p Params) (*Group, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Group{name: name, params: p}, nil
}

// Name returns the group's name.
func (g *Group) Name() string { return g.name }

// Params returns the current parameters.
func (g *Group) Params() Params {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.params
}

// Update validates and replaces the parameters (runtime retuning).
func (g *Group) Update(p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.params = p
	return nil
}

// SetTolerableSlowdown retunes only the headline knob.
func (g *Group) SetTolerableSlowdown(pct float64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	p := g.params
	p.TolerableSlowdownPct = pct
	if err := p.Validate(); err != nil {
		return err
	}
	g.params = p
	return nil
}
