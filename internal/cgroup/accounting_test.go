package cgroup

import (
	"errors"
	"sync"
	"testing"
)

const mb = 1 << 20

func fleetTree(t *testing.T) (root, a, b *Group) {
	t.Helper()
	root, err := NewGroup("pool", Default())
	if err != nil {
		t.Fatal(err)
	}
	root.SetLimit(100 * mb)
	a, err = root.NewChild("tenant-a", Default())
	if err != nil {
		t.Fatal(err)
	}
	b, err = root.NewChild("tenant-b", Default())
	if err != nil {
		t.Fatal(err)
	}
	return root, a, b
}

func TestNestedChargeUnchargeBalance(t *testing.T) {
	root, a, b := fleetTree(t)
	if a.Parent() != root || b.Parent() != root || root.Parent() != nil {
		t.Fatal("hierarchy wiring broken")
	}

	a.Charge(10 * mb)
	b.Charge(30 * mb)
	a.Charge(5 * mb)
	if got := a.Usage(); got != 15*mb {
		t.Fatalf("a usage = %d, want %d", got, 15*mb)
	}
	if got := b.Usage(); got != 30*mb {
		t.Fatalf("b usage = %d, want %d", got, 30*mb)
	}
	// The root always sees the sum of its children.
	if got := root.Usage(); got != 45*mb {
		t.Fatalf("root usage = %d, want %d", got, 45*mb)
	}

	a.Uncharge(15 * mb)
	b.Uncharge(30 * mb)
	if root.Usage() != 0 || a.Usage() != 0 || b.Usage() != 0 {
		t.Fatalf("uncharge did not balance: root %d a %d b %d",
			root.Usage(), a.Usage(), b.Usage())
	}
}

func TestUnchargeUnderflowPanics(t *testing.T) {
	_, a, _ := fleetTree(t)
	a.Charge(mb)
	defer func() {
		if recover() == nil {
			t.Fatal("uncharging more than usage did not panic")
		}
	}()
	a.Uncharge(2 * mb)
}

func TestTryChargeIsAtomicAcrossLevels(t *testing.T) {
	root, a, b := fleetTree(t)
	a.SetLimit(40 * mb)

	// Under every limit: applies at both levels.
	if err := a.TryCharge(30 * mb); err != nil {
		t.Fatal(err)
	}
	if a.Usage() != 30*mb || root.Usage() != 30*mb {
		t.Fatalf("charge not propagated: a %d root %d", a.Usage(), root.Usage())
	}

	// Refused by the child's own limit: nothing changes anywhere.
	if err := a.TryCharge(20 * mb); !errors.Is(err, ErrOverLimit) {
		t.Fatalf("want ErrOverLimit, got %v", err)
	}
	if a.Usage() != 30*mb || root.Usage() != 30*mb {
		t.Fatalf("refused charge leaked: a %d root %d", a.Usage(), root.Usage())
	}

	// Refused by the root even though the child has headroom.
	if err := b.TryCharge(80 * mb); !errors.Is(err, ErrOverLimit) {
		t.Fatalf("want ErrOverLimit from root, got %v", err)
	}
	if b.Usage() != 0 || root.Usage() != 30*mb {
		t.Fatalf("root-refused charge leaked: b %d root %d", b.Usage(), root.Usage())
	}
}

func TestLimitChangeMidRun(t *testing.T) {
	_, a, _ := fleetTree(t)
	a.SetLimit(40 * mb)
	a.Charge(35 * mb)
	if got := a.OverLimit(); got != 0 {
		t.Fatalf("under limit but OverLimit = %d", got)
	}

	// The arbiter shrinks the grant below current residency — allowed, and
	// the excess becomes the squeeze signal.
	a.SetLimit(20 * mb)
	if got := a.OverLimit(); got != 15*mb {
		t.Fatalf("OverLimit = %d, want %d", got, 15*mb)
	}
	if err := a.TryCharge(mb); !errors.Is(err, ErrOverLimit) {
		t.Fatal("over-limit group accepted a TryCharge")
	}
	// Residency mirroring still lands (the migration already happened).
	a.Charge(mb)
	if got := a.Usage(); got != 36*mb {
		t.Fatalf("usage = %d, want %d", got, 36*mb)
	}

	// Draining below the new grant clears the pressure and re-opens
	// admission.
	a.Uncharge(20 * mb)
	if got := a.OverLimit(); got != 0 {
		t.Fatalf("OverLimit = %d after drain, want 0", got)
	}
	if err := a.TryCharge(mb); err != nil {
		t.Fatal(err)
	}

	// Limit 0 means unlimited, not zero byte (the root's pool limit still
	// applies, so stay inside it).
	a.SetLimit(0)
	if err := a.TryCharge(50 * mb); err != nil {
		t.Fatalf("unlimited group refused charge: %v", err)
	}
}

func TestConcurrentChargesBalance(t *testing.T) {
	root, a, b := fleetTree(t)
	root.SetLimit(0)
	var wg sync.WaitGroup
	for _, g := range []*Group{a, b} {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Charge(4096)
				g.Uncharge(4096)
				if err := g.TryCharge(4096); err == nil {
					g.Uncharge(4096)
				}
			}
		}()
	}
	wg.Wait()
	if root.Usage() != 0 || a.Usage() != 0 || b.Usage() != 0 {
		t.Fatalf("concurrent charges drifted: root %d a %d b %d",
			root.Usage(), a.Usage(), b.Usage())
	}
}

func TestNewChildValidates(t *testing.T) {
	root, _, _ := fleetTree(t)
	if _, err := root.NewChild("bad", Params{}); err == nil {
		t.Fatal("zero params accepted for child")
	}
}
