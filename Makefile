GO ?= go

.PHONY: build test test-short vet race check check-short bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Fast tier: skips the scaled harness integration runs.
test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -timeout 45m ./...

# The full pre-merge gate: build, vet, race-enabled tests.
check:
	./scripts/check.sh

# The fast gate CI runs on every push: short-tier tests only.
check-short:
	SHORT=1 ./scripts/check.sh

# Record the hot-path access benchmark under results/.
bench:
	$(GO) test -run '^$$' -bench BenchmarkAccessPath -benchmem . | tee results/bench-access-latest.txt
