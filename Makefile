GO ?= go

.PHONY: build test vet race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -timeout 45m ./...

# The full pre-merge gate: build, vet, race-enabled tests.
check:
	./scripts/check.sh

# Record the hot-path access benchmark under results/.
bench:
	$(GO) test -run '^$$' -bench BenchmarkAccessPath -benchmem . | tee results/bench-access-latest.txt
