#!/bin/sh
# Daemon gate (called by scripts/check.sh and CI): thermostatd's lifecycle
# contract, end to end against real processes and signals.
#  1. Hot reload: SIGHUP mid-run re-reads the config and applies the diff at
#     an epoch boundary; POST /reload answers on the same runner.
#  2. Degradation: under forced permanent-fault chaos /status walks to
#     health=quarantine-only, and the run keeps going (bounded backpressure,
#     not a crash).
#  3. Graceful stop: SIGTERM exits 0 with telemetry flushed.
#  4. Crash safety: kill -9 mid-run leaves a checkpoint; a restart restores
#     from it (journal replay + digest check) and the final exports are
#     byte-identical to an uninterrupted reference run.
set -eu

cd "$(dirname "$0")/.."

dir="$(mktemp -d)"
trap 'rm -rf "$dir"; [ -n "${pid:-}" ] && kill -9 "$pid" 2>/dev/null || true' EXIT

go build -o "$dir/thermostatd" ./cmd/thermostatd

# wait_addr LOGFILE: echo the bound observability address once announced.
wait_addr() {
	i=0
	while [ $i -lt 100 ]; do
		a="$(sed -n 's/.*"addr":"http:\/\/\([^"]*\)".*/\1/p' "$1" | head -n1)"
		if [ -n "$a" ]; then
			echo "$a"
			return 0
		fi
		if ! kill -0 "$pid" 2>/dev/null; then
			echo "daemon gate: daemon exited before announcing the server" >&2
			cat "$1" >&2
			exit 1
		fi
		sleep 0.1
		i=$((i + 1))
	done
	echo "daemon gate: server address never appeared in the log" >&2
	exit 1
}

# --- 1 + 3: hot reload by SIGHUP and POST /reload, then SIGTERM exit 0 ----
cat >"$dir/live.yaml" <<EOF
app: redis
policy: thermostat
scale: tiny
slowdown_pct: 3
duration_s: 60
log_format: json
serve: localhost:0
telemetry:
  trace: $dir/live.trace.json
daemon:
  epoch_wall_ms: 40
EOF

"$dir/thermostatd" -config "$dir/live.yaml" 2>"$dir/live.log" &
pid=$!
addr="$(wait_addr "$dir/live.log")"

curl -fsS "http://$addr/status" >"$dir/status1.json"
jq -e '.phase == "running" and .health == "healthy"' "$dir/status1.json" >/dev/null

# Edit the config and SIGHUP: the change must be journaled and applied at an
# epoch boundary.
sed -i 's/^slowdown_pct: 3$/slowdown_pct: 8/' "$dir/live.yaml"
kill -HUP "$pid"
i=0
until grep -q '"msg":"config reloaded"' "$dir/live.log"; do
	i=$((i + 1))
	if [ $i -gt 100 ]; then
		echo "daemon gate: SIGHUP reload never applied" >&2
		cat "$dir/live.log" >&2
		exit 1
	fi
	sleep 0.1
done
grep -q 'slowdown_pct: 3 → 8' "$dir/live.log"

# POST /reload re-reads the same file: now a no-op, still a 200.
curl -fsS -X POST "http://$addr/reload" | jq -e '.queued == []' >/dev/null
# GET must be rejected: the reload endpoint mutates.
code="$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/reload")"
[ "$code" = "405" ] || { echo "daemon gate: GET /reload gave $code, want 405" >&2; exit 1; }

kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
[ "$rc" = "0" ] || { echo "daemon gate: SIGTERM exit code $rc, want 0" >&2; cat "$dir/live.log" >&2; exit 1; }
[ -s "$dir/live.trace.json" ] || { echo "daemon gate: no trace after graceful stop" >&2; exit 1; }
grep -q '"msg":"graceful stop at epoch boundary"' "$dir/live.log"
echo "daemon: SIGHUP reload applied at epoch boundary; SIGTERM exits 0 with exports"

# --- 2: forced chaos walks the ladder to quarantine-only -------------------
cat >"$dir/chaos.yaml" <<EOF
app: redis
policy: thermostat
scale: tiny
slowdown_pct: 3
duration_s: 60
log_format: json
serve: localhost:0
chaos:
  rate: 1
  permanent_fraction: 1
daemon:
  epoch_wall_ms: 25
  degrade:
    degrade_after: 1
    quarantine_after: 1
    recover_after: 1000
    widen_factor: 1
EOF

"$dir/thermostatd" -config "$dir/chaos.yaml" 2>"$dir/chaos.log" &
pid=$!
addr="$(wait_addr "$dir/chaos.log")"

health=""
i=0
while [ $i -lt 200 ]; do
	health="$(curl -fsS "http://$addr/status" | jq -r '.health')"
	[ "$health" = "quarantine-only" ] && break
	if ! kill -0 "$pid" 2>/dev/null; then
		echo "daemon gate: chaos run died before reaching quarantine-only" >&2
		cat "$dir/chaos.log" >&2
		exit 1
	fi
	sleep 0.1
	i=$((i + 1))
done
if [ "$health" != "quarantine-only" ]; then
	echo "daemon gate: health stuck at '$health', want quarantine-only" >&2
	cat "$dir/chaos.log" >&2
	exit 1
fi
grep -q '"to":"degraded"' "$dir/chaos.log"
grep -q '"to":"quarantine-only"' "$dir/chaos.log"

kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=""
[ "$rc" = "0" ] || { echo "daemon gate: chaos-run SIGTERM exit code $rc, want 0" >&2; exit 1; }
echo "daemon: forced chaos reaches quarantine-only in /status and the log, run survives"

# --- 4: kill -9, restore from checkpoint, byte-identical exports -----------
cat >"$dir/ref.yaml" <<EOF
app: redis
policy: thermostat
scale: tiny
slowdown_pct: 3
duration_s: 8
log_format: json
telemetry:
  trace: $dir/ref.trace.json
  metrics: $dir/ref.metrics.jsonl
EOF
"$dir/thermostatd" -config "$dir/ref.yaml" 2>/dev/null

cat >"$dir/crash.yaml" <<EOF
app: redis
policy: thermostat
scale: tiny
slowdown_pct: 3
duration_s: 8
log_format: json
telemetry:
  trace: $dir/crash.trace.json
  metrics: $dir/crash.metrics.jsonl
daemon:
  checkpoint_path: $dir/daemon.ckpt
  checkpoint_every_epochs: 3
  epoch_wall_ms: 60
EOF
"$dir/thermostatd" -config "$dir/crash.yaml" 2>"$dir/crash.log" &
pid=$!
i=0
until [ -s "$dir/daemon.ckpt" ]; do
	i=$((i + 1))
	if [ $i -gt 100 ]; then
		echo "daemon gate: no checkpoint appeared before the kill" >&2
		cat "$dir/crash.log" >&2
		exit 1
	fi
	sleep 0.05
done
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""
[ ! -e "$dir/crash.trace.json" ] || { echo "daemon gate: exports written despite kill -9" >&2; exit 1; }

# Restart with the same config: the surviving checkpoint must be picked up,
# replayed to its digest, and the completed run must match the reference
# byte-for-byte.
"$dir/thermostatd" -config "$dir/crash.yaml" 2>"$dir/restore.log"
grep -q '"msg":"restored from checkpoint"' "$dir/restore.log"
cmp "$dir/ref.trace.json" "$dir/crash.trace.json"
cmp "$dir/ref.metrics.jsonl" "$dir/crash.metrics.jsonl"
[ ! -e "$dir/daemon.ckpt" ] || { echo "daemon gate: checkpoint not removed after completion" >&2; exit 1; }
echo "daemon: kill -9 + restart restores from checkpoint; exports byte-identical to reference"
