#!/bin/sh
# Capture CPU and allocation profiles of a seeded thermostat-sim run through
# the CLI's -pprof debug server, writing pprof protos under results/profiles/.
# View them with: go tool pprof -http=: results/profiles/cpu.pb.gz
#
# Usage: scripts/profile.sh [app] [scale] [cpu-profile-seconds]
#   app    application model (default redis; see thermostat-sim -list)
#   scale  tiny | bench | repro (default bench)
#   secs   CPU profile duration in wall seconds (default 10)
set -eu

cd "$(dirname "$0")/.."

APP="${1:-redis}"
SCALE="${2:-bench}"
SECS="${3:-10}"
ADDR="localhost:${PPROF_PORT:-6060}"
OUT=results/profiles
mkdir -p "$OUT"

# Build first so `go run` startup doesn't eat into the profile window.
go build -o "$OUT/.thermostat-sim" ./cmd/thermostat-sim

# A long simulated duration keeps the process alive while profiles stream;
# the run is killed once both captures finish.
"$OUT/.thermostat-sim" -app "$APP" -scale "$SCALE" -duration 3600 \
	-pprof "$ADDR" >/dev/null 2>&1 &
SIM=$!
trap 'kill "$SIM" 2>/dev/null || true; rm -f "$OUT/.thermostat-sim"' EXIT

# Wait for the debug server to come up.
i=0
until go tool pprof -proto -output=/dev/null "http://$ADDR/debug/pprof/heap" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -ge 50 ] && { echo "profile.sh: debug server never came up on $ADDR" >&2; exit 1; }
	sleep 0.2
done

echo "== ${SECS}s CPU profile ($APP at $SCALE scale)"
go tool pprof -proto -seconds "$SECS" -output "$OUT/cpu.pb.gz" \
	"http://$ADDR/debug/pprof/profile" >/dev/null
echo "== allocation profile"
go tool pprof -proto -output "$OUT/allocs.pb.gz" \
	"http://$ADDR/debug/pprof/allocs" >/dev/null

echo "profiles written:"
ls -l "$OUT"/cpu.pb.gz "$OUT"/allocs.pb.gz
echo "inspect with: go tool pprof -http=: $OUT/cpu.pb.gz"
