#!/bin/sh
# Observability gate (called by scripts/check.sh and CI): the live plane is
# strictly read-side, so a seeded run scraped mid-flight must export
# byte-identical trace/metrics files to the same run without -serve — at a
# different worker count, to pin both invariances at once. Along the way:
#  1. /healthz answers while the run is in flight;
#  2. the mid-run /metrics body satisfies the strict parser (promlint);
#  3. /status reports phase=running with the run's info block;
#  4. -log-format json emits one JSON object per stderr line, end to end.
set -eu

cd "$(dirname "$0")/.."

dir="$(mktemp -d)"
trap 'rm -rf "$dir"; [ -n "${serve_pid:-}" ] && kill "$serve_pid" 2>/dev/null || true' EXIT

go build -o "$dir/thermostat-sim" ./cmd/thermostat-sim
go build -o "$dir/promlint" ./cmd/promlint

# Port 0: the kernel picks a free port; the bound address is announced in
# the first JSON log line.
"$dir/thermostat-sim" -app redis -scale tiny -duration 12 -workers 8 \
	-serve localhost:0 -log-format json \
	-trace "$dir/s.trace.json" -metrics "$dir/s.metrics.jsonl" \
	>/dev/null 2>"$dir/serve.log" &
serve_pid=$!

addr=""
i=0
while [ $i -lt 100 ]; do
	addr="$(sed -n 's/.*"addr":"http:\/\/\([^"]*\)".*/\1/p' "$dir/serve.log" | head -n1)"
	[ -n "$addr" ] && break
	if ! kill -0 "$serve_pid" 2>/dev/null; then
		echo "obsv gate: run exited before announcing the server" >&2
		cat "$dir/serve.log" >&2
		exit 1
	fi
	sleep 0.1
	i=$((i + 1))
done
if [ -z "$addr" ]; then
	echo "obsv gate: server address never appeared in the log" >&2
	exit 1
fi

# Mid-run scrape: the run above has several seconds of wall clock left.
body="$(curl -fsS "http://$addr/healthz")"
[ "$body" = "ok" ] || { echo "obsv gate: /healthz said '$body'" >&2; exit 1; }
curl -fsS "http://$addr/metrics" >"$dir/scrape.prom"
curl -fsS "http://$addr/status" >"$dir/status.json"
curl -fsS "http://$addr/dump?what=accessed" >/dev/null

"$dir/promlint" "$dir/scrape.prom"
grep -q '^thermostat_run_info{' "$dir/scrape.prom"
grep -q '^thermostat_accesses_total{' "$dir/scrape.prom"
jq -e '.phase == "running" and .info.app == "redis"' "$dir/status.json" >/dev/null

wait "$serve_pid"
serve_pid=""

# Every progress line under -log-format json must be a JSON object.
jq -es 'all(type == "object")' "$dir/serve.log" >/dev/null || {
	echo "obsv gate: non-JSON line in -log-format json stderr" >&2
	cat "$dir/serve.log" >&2
	exit 1
}

"$dir/thermostat-sim" -app redis -scale tiny -duration 12 -workers 1 \
	-trace "$dir/n.trace.json" -metrics "$dir/n.metrics.jsonl" >/dev/null
cmp "$dir/s.trace.json" "$dir/n.trace.json"
cmp "$dir/s.metrics.jsonl" "$dir/n.metrics.jsonl"

echo "obsv: mid-run scrape valid; exports unchanged by -serve at any worker count"
