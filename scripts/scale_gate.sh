#!/bin/sh
# Scaling gate (called by scripts/check.sh and CI): the sparse region-grain
# page table and sharded tracker scans must stay honest without running the
# full 1 GB -> 1 TB sweep (that lives in `repro -exp scale`, pinned under
# results/BENCH_scale.json). The short-mode smoke asserts:
#  1. sublinearity: growing the footprint 1 GB -> 16 GB shrinks sparse
#     state bytes per simulated GB, and sparse state undercuts dense
#     (TestScaleStateShrinks);
#  2. determinism: the same seeded run is reflect.DeepEqual and
#     byte-identical in its JSON export at -shard-workers 0, 1, and 8, on
#     sparse and dense tables (TestShardWorkersIdentical*);
#  3. the CLI path end to end: thermostat-sim -sparse -shard-workers 1 vs 8
#     on a 16 GB footprint exports byte-identical trace/metrics files;
#  4. the sweep cell still benchmarks (one BenchmarkScalePoint iteration).
set -eu

cd "$(dirname "$0")/.."

dir="$(mktemp -d)"
trap 'rm -rf "$dir"' EXIT

echo "== scale: sublinearity + shard determinism tests"
go test -count=1 -run 'TestShardWorkersIdentical|TestScaleStateShrinks' -short \
	./internal/harness

echo "== scale: CLI shard invariance at 16G"
go build -o "$dir/thermostat-sim" ./cmd/thermostat-sim
"$dir/thermostat-sim" -app scale-synth -footprint 16G -sparse -shard-workers 1 \
	-scale tiny -duration 4 -workers 1 \
	-trace "$dir/s1.trace.json" -metrics "$dir/s1.metrics.jsonl" >"$dir/s1.out"
"$dir/thermostat-sim" -app scale-synth -footprint 16G -sparse -shard-workers 8 \
	-scale tiny -duration 4 -workers 1 \
	-trace "$dir/s8.trace.json" -metrics "$dir/s8.metrics.jsonl" >"$dir/s8.out"
cmp "$dir/s1.trace.json" "$dir/s8.trace.json"
cmp "$dir/s1.metrics.jsonl" "$dir/s8.metrics.jsonl"
cmp "$dir/s1.out" "$dir/s8.out"

echo "== scale: bench compile smoke"
go test -run=NONE -bench 'BenchmarkScalePoint' -benchtime=1x ./internal/harness

echo "scale: state sublinear; runs byte-identical at any -shard-workers"
