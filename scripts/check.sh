#!/bin/sh
# Pre-merge gate: build everything, vet, run the tests with the race
# detector. Run from the repository root (or via `make check`).
#
# SHORT=1 runs the fast tier only (go test -short): the scaled harness
# integration runs are skipped, so the whole gate finishes in well under
# a minute. The default (full) tier runs every test.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

if [ "${SHORT:-0}" = "1" ]; then
	echo "== go test -short -race ./..."
	go test -short -race -timeout 10m ./...
else
	echo "== go test -race ./..."
	# The harness package runs full scaled experiments; under the race
	# detector it needs well over go test's default 10m budget.
	go test -race -timeout 45m ./...
fi

echo "check: OK"
