#!/bin/sh
# Pre-merge gate: build everything, vet, run all tests with the race
# detector. Run from the repository root (or via `make check`).
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
# The harness package runs full scaled experiments; under the race
# detector it needs well over go test's default 10m budget.
go test -race -timeout 45m ./...

echo "check: OK"
