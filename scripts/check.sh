#!/bin/sh
# Pre-merge gate: build everything, vet, run the tests with the race
# detector. Run from the repository root (or via `make check`).
#
# SHORT=1 runs the fast tier only (go test -short): the scaled harness
# integration runs are skipped, so the whole gate finishes in well under
# a minute. The default (full) tier runs every test.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

if [ "${SHORT:-0}" = "1" ]; then
	echo "== go test -short -race ./..."
	go test -short -race -timeout 10m ./...
	echo "== hot-path benchmarks (smoke)"
	# One quick pass over the hot-path micro-benchmarks: catches bit-rot in
	# the flat leaf index and batched access engine without the full
	# results/bench-hotpath-*.txt measurement runs.
	go test -run=NONE -bench 'BenchmarkPT' -benchtime=100x ./internal/pagetable
	go test -run=NONE -bench 'BenchmarkAccess' -benchtime=100x .
else
	echo "== go test -race ./..."
	# The harness package runs full scaled experiments; under the race
	# detector it needs well over go test's default 10m budget.
	go test -race -timeout 45m ./...
fi

echo "== trace determinism gate"
# Telemetry is recorded in virtual time, so the same seeded run must export
# byte-identical traces and metrics no matter how many workers fan the
# baseline+policy pair out. Run the short simulation serially and with 8
# workers and compare byte-for-byte.
tracedir="$(mktemp -d)"
trap 'rm -rf "$tracedir"' EXIT
go run ./cmd/thermostat-sim -app redis -scale tiny -duration 4 -workers 1 \
	-trace "$tracedir/w1.trace.json" -metrics "$tracedir/w1.metrics.jsonl" >/dev/null
go run ./cmd/thermostat-sim -app redis -scale tiny -duration 4 -workers 8 \
	-trace "$tracedir/w8.trace.json" -metrics "$tracedir/w8.metrics.jsonl" >/dev/null
cmp "$tracedir/w1.trace.json" "$tracedir/w8.trace.json"
cmp "$tracedir/w1.metrics.jsonl" "$tracedir/w8.metrics.jsonl"
echo "traces byte-identical at -workers 1 and -workers 8"

echo "== policy matrix smoke gate"
# One abbreviated run per tracker × policy cell (TestMatrixSmoke at its
# short-mode duration), then the golden byte-identity pins: the composed
# poison+threshold engine must still replay the seed Thermostat's trace and
# metrics exports byte-for-byte.
go test -short -count=1 -run 'TestMatrixSmoke' ./internal/harness
go test -count=1 -run 'TestRunAllTelemetryWorkerInvariance|TestComposedThermostatMatchesSeedEngine' \
	./internal/harness
echo "matrix: all tracker x policy cells run; seed composition byte-identical"

echo "== chaos gates"
# Inertness: -chaos-rate 0 must be byte-identical to a run without any
# chaos flags, even with a seed and permanent fraction configured — the
# zero-rate config installs no injector at all.
go run ./cmd/thermostat-sim -app redis -scale tiny -duration 4 -workers 1 \
	-chaos-rate 0 -chaos-seed 7 -chaos-permanent 1 \
	-trace "$tracedir/c0.trace.json" -metrics "$tracedir/c0.metrics.jsonl" >/dev/null
cmp "$tracedir/w1.trace.json" "$tracedir/c0.trace.json"
cmp "$tracedir/w1.metrics.jsonl" "$tracedir/c0.metrics.jsonl"
# Survival + reproducibility: a seeded run with permanent migration
# failures must complete under the race detector and export byte-identical
# files at any worker count.
go run -race ./cmd/thermostat-sim -app cassandra -scale tiny -duration 6 -workers 1 \
	-chaos-rate 0.3 -chaos-permanent 0.5 -chaos-seed 7 \
	-trace "$tracedir/cw1.trace.json" -metrics "$tracedir/cw1.metrics.jsonl" >/dev/null
go run -race ./cmd/thermostat-sim -app cassandra -scale tiny -duration 6 -workers 8 \
	-chaos-rate 0.3 -chaos-permanent 0.5 -chaos-seed 7 \
	-trace "$tracedir/cw8.trace.json" -metrics "$tracedir/cw8.metrics.jsonl" >/dev/null
cmp "$tracedir/cw1.trace.json" "$tracedir/cw8.trace.json"
cmp "$tracedir/cw1.metrics.jsonl" "$tracedir/cw8.metrics.jsonl"
echo "chaos: rate-0 inert, seeded faults survive and reproduce at any worker count"

echo "== fleet smoke gate"
# Multi-tenant arbitration: the arbiter's property tests (grants sum
# exactly to the pool, floors honored, oversubscription rejected), the
# degenerate differential (a single-tenant fleet replays the solo run
# bit-for-bit, traces included), and one two-tenant CLI run end-to-end.
go test -count=1 -run 'TestArbitrate' ./internal/fleet
go test -count=1 -run 'TestFleetSingleTenantMatchesRunComposed' ./internal/harness
go run ./cmd/thermostat-sim -tenants redis,web-search -scale tiny -duration 4 \
	-slowdown 5 >/dev/null
echo "fleet: arbiter invariants hold; single-tenant fleet is bit-identical to solo"

echo "== scaling gate"
# Sparse region-grain state + sharded scans: state bytes per simulated GB
# shrink as the footprint grows, and the same seeded run is byte-identical
# at any -shard-workers count, test- and CLI-level (see
# scripts/scale_gate.sh; the full 1 GB -> 1 TB sweep is `repro -exp scale`).
./scripts/scale_gate.sh

echo "== observability gate"
# Live plane: mid-run /metrics satisfies the strict parser, /status and
# /healthz answer in flight, json logs are machine-parseable, and exports
# stay byte-identical with -serve attached (see scripts/obsv_gate.sh).
go test -count=1 -run 'TestServeScrapeMidRun|TestMetricsGoldenScrape|TestTeeForwardsExactly' ./internal/obsv
./scripts/obsv_gate.sh

echo "== daemon gate"
# Supervised lifecycle: reload-vs-cold-start and checkpoint/restore
# differentials at test level, then thermostatd against real processes and
# signals — SIGHUP reload mid-run, /status walking the degradation ladder
# under forced chaos, SIGTERM exit 0, kill -9 + restart restoring exports
# byte-identical to an uninterrupted run (see scripts/daemon_gate.sh).
go test -count=1 -run 'TestReloadVsColdStart|TestCheckpointRestoreBitIdentity|TestQuarantineOnlyUnderChaos|TestHaltLadder' \
	./internal/daemon
./scripts/daemon_gate.sh

echo "check: OK"
