// Command thermostatd runs one simulation as a supervised long-running
// daemon: config-file driven, hot-reloadable, crash-safe, and observable.
//
//	thermostatd -config examples/configs/daemon.yaml
//	thermostatd -config examples/configs/daemon.yaml -check   # validate only
//
// The config file (YAML subset or strict JSON; see examples/configs/) is
// the daemon's single input. While the run is in flight:
//
//   - SIGHUP, or POST /reload on the -serve address, re-reads the config
//     file and applies the permitted changes at the next epoch boundary.
//     Applied reloads are journaled as timestamped events in virtual time,
//     so a reloaded run replays bit-identically from its journal.
//   - SIGINT/SIGTERM stop the run gracefully at the next epoch boundary:
//     telemetry is flushed, listeners drain, and the exit code is 0.
//   - With daemon.checkpoint_path set, the run checkpoints temp-then-rename
//     at epoch boundaries, and a restart finding the checkpoint resumes the
//     run bit-identically from the last saved boundary (kill -9 safe).
//   - Sustained chaos faults walk the degradation ladder (healthy →
//     degraded → quarantine-only → halted, with hysteresis); the current
//     rung is visible in /status and the structured log.
//
// Exit codes: 0 completed or stopped, 1 run error or panic, 2 config
// error, 3 halted by the degradation ladder.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"thermostat/internal/daemon"
	"thermostat/internal/obsv"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		configPath = flag.String("config", "", "config file (YAML subset or strict JSON; required)")
		check      = flag.Bool("check", false, "validate the config, print its normalized form, and exit")
	)
	flag.Parse()

	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "thermostatd: -config is required (see examples/configs/)")
		flag.Usage()
		return 2
	}
	cfg, err := daemon.LoadFile(*configPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if err := cfg.ValidateForDaemon(); err != nil {
		fmt.Fprintf(os.Stderr, "thermostatd: %s: %v\n", *configPath, err)
		return 2
	}
	if *check {
		os.Stdout.Write(cfg.Encode())
		return 0
	}
	logger, _ := obsv.NewLogger(os.Stderr, cfg.LogFormat) // format vetted above

	runner := &daemon.Runner{Config: cfg, Logger: logger}

	// Restore-on-start: a surviving checkpoint means the previous process
	// died mid-run (a completed run removes its checkpoint). The checkpoint
	// carries the run's deterministic closure — start config plus reload
	// journal — and that closure wins over the config file on disk, which
	// may have changed since; reload it again after the restore if wanted.
	if cfg.Daemon.CheckpointPath != "" {
		cp, err := daemon.ReadCheckpoint(cfg.Daemon.CheckpointPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "thermostatd: %v\n", err)
			return 1
		}
		if cp != nil {
			logger.Info("checkpoint found; resuming previous run",
				"path", cfg.Daemon.CheckpointPath,
				"epoch", cp.SavedAtEpoch, "virtual_ns", cp.VirtualNs)
			runner.Config = cp.Config
			runner.Timeline = cp.Timeline
			runner.Restore = cp
		}
	}

	// The observability plane serves on every requested address; /status
	// carries the daemon's health rung and POST /reload re-reads the config
	// file exactly like SIGHUP.
	if cfg.Serve != "" || cfg.Pprof != "" {
		pub := obsv.NewPublisher()
		pub.SetInfo(obsv.Info{
			Binary: "thermostatd", App: cfg.App, Tracker: cfg.Tracker,
			Policy: cfg.Policy, Scale: cfg.Scale, Seed: cfg.Seed,
		})
		runner.Publisher = pub
		var servers []*obsv.Server
		for _, addr := range serveAddrs(cfg.Serve, cfg.Pprof) {
			srv, bound, err := obsv.Serve(addr, pub)
			if err != nil {
				fmt.Fprintf(os.Stderr, "thermostatd: %v\n", err)
				return 1
			}
			srv.SetReloadHandler(func() ([]string, error) {
				return reloadFromFile(runner, *configPath)
			})
			servers = append(servers, srv)
			logger.Info("observability server listening",
				"addr", "http://"+bound, "endpoints", "/metrics /healthz /status /reload /dump /debug/pprof")
		}
		pub.SetPhase(obsv.PhaseRunning)
		defer pub.SetPhase(obsv.PhaseDone)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			for _, s := range servers {
				s.Shutdown(ctx) //nolint:errcheck // best-effort drain on the way out
			}
		}()
	}

	// Signal plumbing: HUP reloads, INT/TERM stop gracefully (the run ends
	// at the next epoch boundary, telemetry flushes, exit 0).
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGHUP, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			select {
			case sig := <-sigc:
				switch sig {
				case syscall.SIGHUP:
					changes, err := reloadFromFile(runner, *configPath)
					switch {
					case err != nil:
						logger.Error("reload rejected", "err", err)
					case len(changes) == 0:
						logger.Info("reload is a no-op; nothing queued")
					default:
						logger.Info("reload queued for next epoch boundary", "changes", changes)
					}
				default:
					logger.Info("signal received; stopping at next epoch boundary", "signal", sig.String())
					runner.Stop()
				}
			case <-done:
				return
			}
		}
	}()

	logger.Info("daemon starting", "config", *configPath,
		"app", runner.Config.App, "policy", runner.Config.Policy, "scale", runner.Config.Scale)
	out, err := runner.Run()
	signal.Stop(sigc)
	switch {
	case errors.Is(err, daemon.ErrHalted):
		logger.Error("run halted by degradation ladder", "epochs", out.Epochs)
		return 3
	case err != nil:
		logger.Error("run failed", "err", err)
		return 1
	}
	if out.Config.Telemetry.Epochs {
		fmt.Println(out.Collector.EpochTable())
	}
	logger.Info("run complete", "epochs", out.Epochs, "health", out.Health.String(),
		"reloads", len(out.Timeline))
	return 0
}

// reloadFromFile re-reads the daemon's config file and queues the diff
// against the running config; SIGHUP and POST /reload share it.
func reloadFromFile(r *daemon.Runner, path string) ([]string, error) {
	next, err := daemon.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return r.Reload(next)
}

// serveAddrs deduplicates the serve/pprof addresses, preserving order.
func serveAddrs(addrs ...string) []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range addrs {
		if a == "" || seen[a] {
			continue
		}
		seen[a] = true
		out = append(out, a)
	}
	return out
}
