package main

import (
	"strings"
	"testing"
)

// valid returns an option set that passes validation; each case mutates one
// field off it.
func valid() options {
	return options{
		App: "redis", Policy: "thermostat", Scale: "tiny",
		Slowdown: 3, IdleSecs: 10,
	}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	if err := validate(valid()); err != nil {
		t.Fatalf("default-shaped options rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*options)
		want   string // substring of the one-line usage error
	}{
		{"unknown app", func(o *options) { o.App = "nope" }, "unknown application"},
		{"unknown policy", func(o *options) { o.Policy = "nope" }, "unknown policy"},
		{"unknown scale", func(o *options) { o.Scale = "nope" }, "unknown scale"},
		{"negative duration", func(o *options) { o.Duration = -1 }, "negative"},
		{"nonpositive slowdown", func(o *options) { o.Slowdown = 0 }, "-slowdown"},
		{"nonpositive idle window", func(o *options) {
			o.Policy = "idle-demote"
			o.IdleSecs = -2
		}, "-idle-window"},
		{"negative chaos rate", func(o *options) { o.ChaosRate = -0.1 }, "-chaos-rate"},
		{"chaos rate above one", func(o *options) { o.ChaosRate = 1.5 }, "-chaos-rate"},
		{"negative permanent fraction", func(o *options) { o.ChaosPerm = -1 }, "-chaos-permanent"},
		{"permanent fraction above one", func(o *options) { o.ChaosPerm = 2 }, "-chaos-permanent"},
		{"chaos without migrating policy", func(o *options) {
			o.Policy = "all-dram"
			o.ChaosRate = 0.1
		}, "migrating policy"},
		{"tiers under non-migrating policy", func(o *options) {
			o.Policy = "idle-demote"
			o.Tiers = "dram,cxl"
		}, "-tiers needs a migrating engine"},
		{"unknown tracker", func(o *options) {
			o.Policy = "threshold"
			o.Tracker = "nosuch"
		}, "unknown tracker"},
		{"tracker under fixed arm", func(o *options) {
			o.Tracker = "damon" // policy stays "thermostat"
		}, "needs a composition policy"},
		{"tracker under all-dram", func(o *options) {
			o.Policy = "all-dram"
			o.Tracker = "idlebit"
		}, "needs a composition policy"},
		{"nonpositive slowdown for composition", func(o *options) {
			o.Policy = "heat"
			o.Slowdown = 0
		}, "-slowdown"},
		{"tiers with chaos", func(o *options) {
			o.Tiers = "dram,cxl"
			o.ChaosRate = 0.1
		}, "not supported with -tiers"},
		{"unknown tier preset", func(o *options) { o.Tiers = "dram,quantum" }, "unknown device preset"},
		{"tenants with tiers", func(o *options) {
			o.Tenants = "redis,web-search"
			o.Tiers = "dram,cxl"
		}, "not supported with -tiers"},
		{"tenants under non-migrating policy", func(o *options) {
			o.Tenants = "redis,web-search"
			o.Policy = "all-dram"
		}, "-tenants needs a migrating per-tenant engine"},
		{"unknown tenant app", func(o *options) { o.Tenants = "redis, nope" }, "unknown tenant application"},
		{"unknown log format", func(o *options) { o.LogFormat = "yaml" }, "-log-format"},
		{"unparseable footprint", func(o *options) { o.Footprint = "lots" }, "-footprint"},
		{"nonpositive footprint", func(o *options) { o.Footprint = "-4G" }, "-footprint"},
		{"footprint with tenants", func(o *options) {
			o.Footprint = "64G"
			o.Tenants = "redis,web-search"
		}, "ambiguous"},
		{"negative shard workers", func(o *options) { o.ShardWorkers = -1 }, "-shard-workers"},
		{"serve and pprof collide", func(o *options) {
			o.Serve = "localhost:9090"
			o.Pprof = "localhost:9090"
		}, "one listener per address"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := valid()
			tc.mutate(&o)
			err := validate(o)
			if err == nil {
				t.Fatalf("options %+v accepted", o)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("usage error spans lines: %q", err)
			}
		})
	}
}

func TestValidateAcceptsObservabilityCombos(t *testing.T) {
	o := valid()
	o.Serve, o.LogFormat = "localhost:9090", "json"
	if err := validate(o); err != nil {
		t.Fatalf("-serve with json logs rejected: %v", err)
	}
	o = valid()
	o.Serve, o.Pprof = "localhost:9090", "localhost:6060"
	if err := validate(o); err != nil {
		t.Fatalf("distinct -serve/-pprof rejected: %v", err)
	}
	o = valid()
	o.Pprof = "localhost:6060" // pprof alone, serve empty: no collision
	if err := validate(o); err != nil {
		t.Fatalf("-pprof alone rejected: %v", err)
	}
}

func TestValidateAcceptsScalingCombos(t *testing.T) {
	for _, fp := range []string{"512m", "64G", "1.5TiB", "1t"} {
		o := valid()
		o.Footprint = fp
		if err := validate(o); err != nil {
			t.Fatalf("-footprint %s rejected: %v", fp, err)
		}
	}
	o := valid()
	o.App, o.Footprint, o.ShardWorkers = "scale-synth", "1T", 8
	if err := validate(o); err != nil {
		t.Fatalf("scaling combo rejected: %v", err)
	}
	// Sharded scans compose with deep hierarchies and fleets: the knob is
	// plumbed through Scale, and unsharded paths simply ignore it.
	o = valid()
	o.Tenants, o.ShardWorkers = "redis,web-search", 4
	if err := validate(o); err != nil {
		t.Fatalf("shard workers with tenants rejected: %v", err)
	}
}

func TestValidateAcceptsChaosAndTierCombos(t *testing.T) {
	o := valid()
	o.ChaosRate, o.ChaosPerm = 0.5, 1
	if err := validate(o); err != nil {
		t.Fatalf("chaos under thermostat rejected: %v", err)
	}
	o = valid()
	o.Policy = "idle-demote"
	o.ChaosRate = 0.2
	if err := validate(o); err != nil {
		t.Fatalf("chaos under idle-demote rejected: %v", err)
	}
	o = valid()
	o.Tiers = "dram, cxl ,nvm"
	if err := validate(o); err != nil {
		t.Fatalf("whitespace-padded presets rejected: %v", err)
	}
}

func TestValidateAcceptsCompositions(t *testing.T) {
	for _, tracker := range []string{"", "poison", "idlebit", "softdirty", "damon"} {
		for _, policy := range []string{"threshold", "heat"} {
			o := valid()
			o.Tracker, o.Policy = tracker, policy
			if err := validate(o); err != nil {
				t.Fatalf("composition %q+%q rejected: %v", tracker, policy, err)
			}
		}
	}
	// Compositions migrate, so deep hierarchies and chaos both apply.
	o := valid()
	o.Policy, o.Tracker, o.Tiers = "heat", "damon", "dram,cxl,nvm"
	if err := validate(o); err != nil {
		t.Fatalf("composition with -tiers rejected: %v", err)
	}
	o = valid()
	o.Policy, o.ChaosRate = "threshold", 0.2
	if err := validate(o); err != nil {
		t.Fatalf("composition with chaos rejected: %v", err)
	}
}

func TestValidateAcceptsTenantCombos(t *testing.T) {
	o := valid()
	o.Tenants = "redis, web-search ,mysql-tpcc"
	if err := validate(o); err != nil {
		t.Fatalf("tenant fleet under thermostat rejected: %v", err)
	}
	// Fleet tenants run composition engines, so -tracker/-policy pairs and
	// machine-wide chaos both apply.
	o = valid()
	o.Tenants, o.Policy, o.Tracker = "redis,redis", "heat", "damon"
	if err := validate(o); err != nil {
		t.Fatalf("tenant fleet with composition rejected: %v", err)
	}
	o = valid()
	o.Tenants, o.ChaosRate, o.ChaosPerm = "redis,web-search", 0.3, 0.5
	if err := validate(o); err != nil {
		t.Fatalf("tenant fleet with chaos rejected: %v", err)
	}
}
