// Command thermostat-sim runs one application model under a chosen
// placement policy and reports throughput, slowdown-relevant counters, and
// the hot/cold footprint over time:
//
//	thermostat-sim -app redis -policy thermostat -slowdown 3
//	thermostat-sim -app cassandra-write-heavy -policy idle-demote
//	thermostat-sim -app mysql-tpcc -policy all-dram -duration 60
//
// Passing -footprint rescales the application model to a target total size,
// and -sparse/-shard-workers select the region-grain page table and sharded
// tracker scans that keep terabyte footprints simulable (see DESIGN.md,
// "Scaling to terabytes"; results are identical at any -shard-workers):
//
//	thermostat-sim -app scale-synth -footprint 1T -sparse -shard-workers 8
//
// Passing -tiers runs the engine over an N-tier hierarchy instead of the
// paper's two tiers, and additionally reports the per-tier-pair migration
// traffic matrix and the per-tier cost breakdown:
//
//	thermostat-sim -app redis -tiers dram,cxl,nvm -slowdown 3
//
// Passing -tenants runs several application models as co-located tenants of
// one machine: each tenant gets its own cgroup and scoped engine, and a
// fleet arbiter redistributes the shared DRAM pool between them every
// sample period (-slowdown is each tenant's SLO):
//
//	thermostat-sim -tenants redis,mysql-tpcc,web-search -slowdown 5
//
// Passing -serve (or -pprof) starts the live observability plane for the
// duration of the run: Prometheus /metrics, /status, /tenants, a
// memtierd-style /dump?what=accessed census, pprof and expvar — strictly
// read-side, so exports stay byte-identical (see DESIGN.md):
//
//	thermostat-sim -app redis -serve localhost:9090 &
//	curl -s localhost:9090/metrics
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"

	"thermostat/internal/cgroup"
	"thermostat/internal/chaos"
	"thermostat/internal/core"
	"thermostat/internal/harness"
	"thermostat/internal/mem"
	"thermostat/internal/obsv"
	"thermostat/internal/pool"
	"thermostat/internal/report"
	"thermostat/internal/sim"
	"thermostat/internal/telemetry"
	"thermostat/internal/workload"
)

// logger is the process-wide structured logger, configured by -log-format
// in main before any run starts.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

func main() {
	var (
		appFlag   = flag.String("app", "redis", "application model (see -list)")
		polFlag   = flag.String("policy", "thermostat", "thermostat, idle-demote, all-dram, or a placement policy ("+strings.Join(core.PolicyNames(), ", ")+") composed with -tracker")
		trkFlag   = flag.String("tracker", "", "access tracker for composition policies ("+strings.Join(core.TrackerNames(), ", ")+"; default poison)")
		slowdown  = flag.Float64("slowdown", 3, "tolerable slowdown percent (thermostat)")
		idleSecs  = flag.Float64("idle-window", 10, "idle window seconds (idle-demote)")
		scaleName = flag.String("scale", "repro", "scale profile: tiny, bench, repro")
		footprint = flag.String("footprint", "", "rescale the application model to this total footprint (e.g. 64G, 1T; binary units)")
		sparse    = flag.Bool("sparse", false, "use the sparse region-grain page table (cold spans collapse into summaries; exports unchanged)")
		shardWork = flag.Int("shard-workers", 0, "goroutines for sharded tracker scans (0/1 = serial; results are identical at any setting)")
		duration  = flag.Float64("duration", 0, "override run length in (simulated) seconds")
		seed      = flag.Uint64("seed", 1, "random seed")
		tiersFlag = flag.String("tiers", "", "comma-separated device presets for an N-tier run, fastest first (presets: "+strings.Join(mem.PresetNames(), ", ")+")")
		tenFlag   = flag.String("tenants", "", "comma-separated application models to run as co-located tenants under fleet DRAM arbitration (-slowdown is each tenant's SLO)")
		workers   = flag.Int("workers", 0, "goroutines for the baseline+policy run pair (0 = all cores, 1 = serial; results are identical at any setting)")
		list      = flag.Bool("list", false, "list application models and exit")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event JSON file of the policy run (open in Perfetto)")
		metrics   = flag.String("metrics", "", "write per-epoch metric snapshots of the policy run as JSONL")
		epochs    = flag.Bool("epochs", false, "print the per-epoch metric table for the policy run")
		serveAddr = flag.String("serve", "", "serve the live observability plane (/metrics, /status, /tenants, /dump, pprof) on this address (e.g. localhost:9090) for the duration of the run")
		pprofAddr = flag.String("pprof", "", "additional address for the same observability server (kept for compatibility; e.g. localhost:6060)")
		logFormat = flag.String("log-format", "text", "progress log format: text or json")
		chaosRate = flag.Float64("chaos-rate", 0, "per-site fault injection probability for the policy run, 0..1 (0 disables; needs a migrating policy)")
		chaosSeed = flag.Uint64("chaos-seed", 1, "seed for the fault injector's dedicated RNG stream")
		chaosPerm = flag.Float64("chaos-permanent", 0, "fraction of injected migration faults that are permanent, 0..1")
	)
	flag.Parse()

	if *list {
		for _, s := range workload.All() {
			fmt.Println(s.Name)
		}
		fmt.Println("aerospike-write-heavy")
		fmt.Println("cassandra-read-heavy")
		return
	}

	if err := validate(options{
		App: *appFlag, Policy: *polFlag, Tracker: *trkFlag, Scale: *scaleName,
		Slowdown: *slowdown, IdleSecs: *idleSecs, Duration: *duration,
		Tiers: *tiersFlag, Tenants: *tenFlag,
		ChaosRate: *chaosRate, ChaosPerm: *chaosPerm,
		Serve: *serveAddr, Pprof: *pprofAddr, LogFormat: *logFormat,
		Footprint: *footprint, ShardWorkers: *shardWork,
	}); err != nil {
		fatal(err)
	}
	logger, _ = obsv.NewLogger(os.Stderr, *logFormat) // format vetted above
	tracker := *trkFlag
	if tracker == "" {
		tracker = "poison"
	}

	spec, _ := workload.ByName(*appFlag)
	if *footprint != "" {
		target, _ := workload.ParseSize(*footprint) // vetted above
		spec = spec.WithFootprint(target)
	}
	var sc harness.Scale
	switch *scaleName {
	case "tiny":
		sc = harness.Tiny()
	case "bench":
		sc = harness.Bench()
	default:
		sc = harness.Repro()
	}
	sc.Seed = *seed
	sc.Sparse = *sparse
	sc.ShardWorkers = *shardWork
	if *duration > 0 {
		sc.DurationNs = int64(*duration * 1e9)
		if sc.WarmupNs >= sc.DurationNs {
			sc.WarmupNs = sc.DurationNs / 5
		}
	}

	// The observability plane serves on every requested address (-serve and
	// -pprof are the same full server: metrics + status + pprof + expvar).
	var pub *obsv.Publisher
	if *serveAddr != "" || *pprofAddr != "" {
		pub = obsv.NewPublisher()
		pub.SetInfo(obsv.Info{
			Binary: "thermostat-sim", App: *appFlag, Tracker: tracker,
			Policy: *polFlag, Scale: *scaleName, Seed: *seed, Workers: *workers,
		})
		var servers []*obsv.Server
		for _, addr := range serveAddrs(*serveAddr, *pprofAddr) {
			srv, bound, err := obsv.Serve(addr, pub)
			if err != nil {
				fatal(err)
			}
			servers = append(servers, srv)
			logger.Info("observability server listening",
				"addr", "http://"+bound, "endpoints", "/metrics /healthz /status /tenants /dump /debug/pprof")
		}
		// ^C or SIGTERM drains in-flight scrapes before exiting instead of
		// cutting connections mid-response.
		stop := obsv.ShutdownOnSignal(5*time.Second, logger, servers...)
		defer stop()
		pub.SetPhase(obsv.PhaseRunning)
		defer pub.SetPhase(obsv.PhaseDone)
	}

	if *tenFlag != "" {
		runFleet(*tenFlag, sc, tracker, *polFlag, *slowdown, *workers, fleetIO{
			trace: *traceOut, metrics: *metrics, epochs: *epochs,
			chaosRate: *chaosRate, chaosSeed: *chaosSeed, chaosPerm: *chaosPerm,
			pub: pub,
		})
		return
	}

	if *tiersFlag != "" {
		runNTier(spec, sc, *tiersFlag, tracker, *polFlag, *slowdown)
		return
	}

	// A collector attaches to the policy run when any telemetry output was
	// requested. Events are recorded in virtual time, so the files are
	// byte-identical at any -workers setting — and unchanged by -serve,
	// whose publisher tee is strictly read-side.
	var col *telemetry.Collector
	if *traceOut != "" || *metrics != "" || *epochs {
		col = telemetry.NewCollector()
	}
	runLabel := spec.Name + "/" + *polFlag
	var rec telemetry.Recorder
	if pub != nil {
		rec = pub.Recorder(runLabel, col)
	} else if col != nil {
		rec = col
	}
	attach := func(cfg *sim.Config) {
		if rec != nil {
			cfg.Recorder = rec
		}
		// Chaos applies only to the policy run; the all-DRAM baseline arm
		// below never migrates and stays uninjected.
		if *chaosRate > 0 {
			cfg.Chaos = chaos.Config{
				Seed: *chaosSeed, Rate: *chaosRate, PermanentFraction: *chaosPerm,
			}
		}
	}
	var engHook func(*cgroup.Group, *core.Engine)
	if pub != nil {
		engHook = func(_ *cgroup.Group, eng *core.Engine) {
			eng.EnablePublish()
			pub.AttachEngine(runLabel, eng)
		}
	}

	var runPolicy func() (*harness.Outcome, error)
	switch *polFlag {
	case "thermostat":
		runPolicy = func() (*harness.Outcome, error) {
			return harness.RunThermostatWith(spec, sc, *slowdown, attach, engHook)
		}
	case "idle-demote":
		interval := int64(*idleSecs * 1e9 * float64(sc.TimeDilate) / 4)
		runPolicy = func() (*harness.Outcome, error) {
			return harness.RunPolicyWith(spec, sc, &core.IdleDemote{Interval: interval, IdleScans: 4}, attach)
		}
	case "all-dram":
		runPolicy = func() (*harness.Outcome, error) { return harness.RunBaselineWith(spec, sc, attach) }
	default:
		// validate() already vetted the name: a composition policy from the
		// core registry, paired with -tracker (default poison).
		runPolicy = func() (*harness.Outcome, error) {
			return harness.RunComposedHooked(spec, sc, tracker, *polFlag, *slowdown, attach, engHook)
		}
	}

	// The all-DRAM baseline and the policy run are independent simulations;
	// fan the pair out across -workers goroutines.
	logger.Info("running baseline + policy pair", "app", spec.Name, "policy", *polFlag)
	outs, err := pool.Map(*workers, []pool.Task[*harness.Outcome]{
		{Label: spec.Name + "/baseline", Run: func() (*harness.Outcome, error) {
			return harness.RunBaseline(spec, sc)
		}},
		{Label: runLabel, Run: runPolicy},
	})
	if err != nil {
		fatal(err)
	}
	base, outcome := outs[0], outs[1]

	if col != nil {
		if *traceOut != "" {
			if err := writeFile(*traceOut, col.WriteChromeTrace); err != nil {
				fatal(err)
			}
			logger.Info("wrote Chrome trace (open at https://ui.perfetto.dev)", "path", *traceOut)
		}
		if *metrics != "" {
			if err := writeFile(*metrics, col.WriteJSONL); err != nil {
				fatal(err)
			}
			logger.Info("wrote per-epoch metrics", "path", *metrics)
		}
		if *epochs {
			fmt.Println(col.EpochTable())
		}
	}

	res := outcome.Result
	fp := res.FinalFootprint
	summary := report.NewTable("Run summary", "metric", "value")
	summary.AddF("application", spec.Name)
	summary.AddF("policy", res.PolicyName)
	summary.AddF("simulated_seconds", float64(res.DurationNs)/1e9)
	summary.AddF("ops", res.Ops)
	summary.AddF("throughput_ops_per_s", res.Throughput)
	summary.AddF("baseline_ops_per_s", base.Result.Throughput)
	summary.AddF("slowdown_pct", sim.Slowdown(base.Result, res)*100)
	summary.AddF("cold_fraction_pct", fp.ColdFraction()*100)
	summary.AddF("cold_2m_mb", float64(fp.Cold2M)/(1<<20))
	summary.AddF("cold_4k_mb", float64(fp.Cold4K)/(1<<20))
	summary.AddF("hot_2m_mb", float64(fp.Hot2M)/(1<<20))
	summary.AddF("slow_accesses", res.Metrics.SlowAccesses)
	summary.AddF("poison_faults", res.Metrics.PoisonFaults)
	summary.AddF("tlb_miss_rate", res.Metrics.TLB.MissRate())
	summary.AddF("llc_miss_rate", res.Metrics.LLC.MissRate())
	// §4.4: Thermostat's scan/sort work runs on spare cores; report its CPU
	// share of one core over the run.
	summary.AddF("daemon_cpu_core_share", float64(outcome.Machine.DaemonNs())/float64(res.DurationNs))
	if outcome.Engine != nil {
		st := outcome.Engine.Stats()
		summary.AddF("pages_sampled", st.Sampled)
		summary.AddF("demotions", st.Demotions)
		summary.AddF("promotions_corrections", st.Promotions)
	}
	if *chaosRate > 0 {
		f := outcome.Faults
		summary.AddF("chaos_faults_injected", f.Injected)
		summary.AddF("chaos_faults_permanent", f.Permanent)
		summary.AddF("migration_retries", f.Retried)
		summary.AddF("migration_rollbacks", f.RolledBack)
		summary.AddF("pages_quarantined", f.Quarantined)
		if f.Quarantined > 0 {
			logger.Warn("chaos quarantined pages this run",
				"quarantined", f.Quarantined, "injected", f.Injected)
		}
	}
	fmt.Println(summary.String())

	fmt.Println(report.SeriesTable("Footprint over time (bytes)",
		res.Cold2M, res.Cold4K, res.Hot2M, res.Hot4K).String())
}

// serveAddrs deduplicates the -serve/-pprof addresses, preserving order.
func serveAddrs(addrs ...string) []string {
	var out []string
	seen := map[string]bool{}
	for _, a := range addrs {
		if a == "" || seen[a] {
			continue
		}
		seen[a] = true
		out = append(out, a)
	}
	return out
}

// fleetIO bundles the output, chaos, and observability hooks the fleet
// mode honors.
type fleetIO struct {
	trace, metrics string
	epochs         bool
	chaosRate      float64
	chaosSeed      uint64
	chaosPerm      float64
	pub            *obsv.Publisher
}

// runFleet runs the named application models as co-located tenants of one
// machine under fleet DRAM arbitration and prints the per-tenant report:
// each tenant's SLO is -slowdown, its engine the -tracker × -policy
// composition, and its measured slowdown comes from a solo all-DRAM
// baseline of the same workload (fanned across -workers).
func runFleet(names string, sc harness.Scale, tracker, policy string, slowdown float64, workers int, fio fleetIO) {
	if policy == "thermostat" {
		// The paper's arm is the poison+threshold composition.
		tracker, policy = "poison", "threshold"
	}
	var tenants []harness.FleetTenant
	for _, name := range strings.Split(names, ",") {
		spec, _ := workload.ByName(strings.TrimSpace(name))
		// Leave Name empty: the harness default ("<spec>-<i>") keeps cgroup
		// names unique even when the same model is listed twice.
		tenants = append(tenants, harness.FleetTenant{
			Spec: spec, SLOPct: slowdown, Tracker: tracker, Policy: policy,
		})
	}
	opt := harness.FleetOptions{
		Scale: sc, Tenants: tenants, Workers: workers, Baselines: true,
		Publisher: fio.pub,
	}
	if fio.trace != "" || fio.metrics != "" || fio.epochs {
		opt.Telemetry = &harness.TelemetryOptions{}
	}
	if fio.chaosRate > 0 {
		opt.ConfigMutate = func(cfg *sim.Config) {
			cfg.Chaos = chaos.Config{
				Seed: fio.chaosSeed, Rate: fio.chaosRate, PermanentFraction: fio.chaosPerm,
			}
		}
	}
	logger.Info("running tenants under fleet arbitration",
		"tenants", len(tenants), "apps", names)
	fo, err := harness.FleetRun(opt)
	if err != nil {
		fatal(err)
	}

	if col := fo.Telemetry; col != nil {
		if fio.trace != "" {
			if err := writeFile(fio.trace, col.WriteChromeTrace); err != nil {
				fatal(err)
			}
			logger.Info("wrote Chrome trace (open at https://ui.perfetto.dev)", "path", fio.trace)
		}
		if fio.metrics != "" {
			if err := writeFile(fio.metrics, col.WriteJSONL); err != nil {
				fatal(err)
			}
			logger.Info("wrote per-epoch metrics", "path", fio.metrics)
		}
		if fio.epochs {
			fmt.Println(col.EpochTable())
		}
	}

	// The fleet interleave time-shares the machine, so tenant throughput is
	// not comparable to the solo baseline's (that deficit is mostly
	// sharing, not memory slowdown); the solo all-DRAM tput is shown raw
	// for reference and the SLO verdict comes from the engine's estimate.
	r := fo.Result
	tbl := report.NewTable("Fleet run: per-tenant summary",
		"tenant", "slo%", "est_slow%", "sl_ok", "ops", "tput/s",
		"solo_dram_tput/s", "grant_mb", "fast_mb", "foot_mb")
	for _, tr := range r.Tenants {
		status := "meets"
		if tr.Rejected {
			status = "rejected"
		} else if tr.MeanSlowdownPct > tr.SLOPct {
			status = "MISSES"
		}
		solo := "-"
		if b := fo.Baselines[tr.Name]; b != nil {
			solo = fmt.Sprintf("%.0f", b.Throughput)
		}
		tbl.AddF(tr.Name, fmt.Sprintf("%.1f", tr.SLOPct),
			fmt.Sprintf("%.2f", tr.MeanSlowdownPct), status,
			tr.Ops, fmt.Sprintf("%.0f", tr.Throughput), solo,
			fmt.Sprintf("%.0f", float64(tr.GrantBytes)/(1<<20)),
			fmt.Sprintf("%.0f", float64(tr.FastBytes)/(1<<20)),
			fmt.Sprintf("%.0f", float64(tr.FootprintBytes)/(1<<20)))
	}
	fmt.Println(tbl.String())

	fp := r.Global.FinalFootprint
	fmt.Printf("pool %.0f MB, %d arbiter periods; fleet placement %.0f MB hot / %.0f MB cold (%.1f%% cold)\n",
		float64(r.PoolBytes)/(1<<20), r.Periods,
		float64(fp.Hot2M+fp.Hot4K)/(1<<20), float64(fp.Cold())/(1<<20),
		100*fp.ColdFraction())
	if sv, err := harness.FleetSavings(fo); err == nil {
		fmt.Printf("fleet-wide DRAM cost saving vs all-DRAM provisioning: %.1f%%\n", 100*sv)
	}
}

// runNTier runs spec on the named device hierarchy and prints the N-tier
// reports: run summary, per-tier-pair migration traffic, per-tier cost.
func runNTier(spec workload.Spec, sc harness.Scale, names, tracker, policy string, slowdown float64) {
	var tiers []mem.Spec
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		spec, ok := mem.Preset(name, 0) // capacities sized by the harness
		if !ok {
			fatal(fmt.Errorf("unknown device preset %q (presets: %s)", name, strings.Join(mem.PresetNames(), ", ")))
		}
		tiers = append(tiers, spec)
	}
	logger.Info("running N-tier hierarchy",
		"app", spec.Name, "tiers", names, "target_pct", slowdown)
	var out *harness.Outcome
	var err error
	if policy == "thermostat" {
		out, err = harness.RunNTier(spec, sc, tiers, slowdown)
	} else {
		out, err = harness.RunNTierComposed(spec, sc, tiers, tracker, policy, slowdown)
	}
	if err != nil {
		fatal(err)
	}
	rep, err := harness.AnalyzeNTier(out)
	if err != nil {
		fatal(err)
	}

	res := out.Result
	st := out.Engine.Stats()
	summary := report.NewTable("Run summary", "metric", "value")
	summary.AddF("application", spec.Name)
	summary.AddF("tiers", names)
	summary.AddF("simulated_seconds", float64(res.DurationNs)/1e9)
	summary.AddF("ops", res.Ops)
	summary.AddF("throughput_ops_per_s", res.Throughput)
	summary.AddF("pages_sampled", st.Sampled)
	summary.AddF("demotions", st.Demotions)
	summary.AddF("promotions_corrections", st.Promotions)
	summary.AddF("sinks_to_lower_tiers", st.Sinks)
	summary.AddF("savings_vs_all_dram_pct", rep.Savings*100)
	fmt.Println(summary.String())
	fmt.Println(rep.TrafficTable().String())
	fmt.Println(rep.CostTable().String())
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	logger.Error("thermostat-sim failed", "err", err)
	os.Exit(1)
}
