package main

import (
	"fmt"
	"strings"

	"thermostat/internal/core"
	"thermostat/internal/mem"
	"thermostat/internal/obsv"
	"thermostat/internal/workload"
)

// options captures every flag value that validation inspects, so the
// validator is a pure function the tests drive directly.
type options struct {
	App          string
	Policy       string
	Tracker      string
	Scale        string
	Slowdown     float64
	IdleSecs     float64
	Duration     float64
	Tiers        string
	Tenants      string
	ChaosRate    float64
	ChaosPerm    float64
	Serve        string
	Pprof        string
	LogFormat    string
	Footprint    string
	ShardWorkers int
}

// isCompositionPolicy reports whether name is a placement policy from the
// core registry (a tracker × policy composition) rather than one of the
// fixed legacy arms.
func isCompositionPolicy(name string) bool {
	for _, p := range core.PolicyNames() {
		if p == name {
			return true
		}
	}
	return false
}

// migratesPages reports whether the policy arm moves pages between tiers
// (every arm except the all-DRAM baseline does).
func migratesPages(policy string) bool { return policy != "all-dram" }

// validate rejects inconsistent flag combinations before any simulation
// state is built, with a one-line usage error per defect — conditions that
// previously surfaced as mid-run fatals (unknown presets, -tiers under the
// wrong policy) fail here instead.
func validate(o options) error {
	if _, ok := workload.ByName(o.App); !ok {
		return fmt.Errorf("unknown application %q (try -list)", o.App)
	}
	switch {
	case o.Policy == "thermostat" || o.Policy == "idle-demote" || o.Policy == "all-dram":
	case isCompositionPolicy(o.Policy):
	default:
		return fmt.Errorf("unknown policy %q (thermostat, idle-demote, all-dram, or a composition policy: %s)",
			o.Policy, strings.Join(core.PolicyNames(), ", "))
	}
	if o.Tracker != "" {
		known := false
		for _, t := range core.TrackerNames() {
			if t == o.Tracker {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("unknown tracker %q (trackers: %s)",
				o.Tracker, strings.Join(core.TrackerNames(), ", "))
		}
		if !isCompositionPolicy(o.Policy) {
			return fmt.Errorf("-tracker %s needs a composition policy (-policy %s); -policy %s is a fixed arm",
				o.Tracker, strings.Join(core.PolicyNames(), " or "), o.Policy)
		}
	}
	switch o.Scale {
	case "tiny", "bench", "repro":
	default:
		return fmt.Errorf("unknown scale %q (tiny, bench, or repro)", o.Scale)
	}
	if o.Duration < 0 {
		return fmt.Errorf("-duration %g is negative", o.Duration)
	}
	if o.Footprint != "" {
		if _, err := workload.ParseSize(o.Footprint); err != nil {
			return fmt.Errorf("-footprint: %v", err)
		}
		if o.Tenants != "" {
			return fmt.Errorf("-footprint is ambiguous with -tenants; size each tenant's model instead")
		}
	}
	if o.ShardWorkers < 0 {
		return fmt.Errorf("-shard-workers %d is negative (0 = serial)", o.ShardWorkers)
	}
	if (o.Policy == "thermostat" || isCompositionPolicy(o.Policy)) && o.Slowdown <= 0 {
		return fmt.Errorf("-slowdown %g must be positive for -policy %s", o.Slowdown, o.Policy)
	}
	if o.Policy == "idle-demote" && o.IdleSecs <= 0 {
		return fmt.Errorf("-idle-window %g must be positive for -policy idle-demote", o.IdleSecs)
	}
	if o.ChaosRate < 0 || o.ChaosRate > 1 {
		return fmt.Errorf("-chaos-rate %g outside [0, 1]", o.ChaosRate)
	}
	if o.ChaosPerm < 0 || o.ChaosPerm > 1 {
		return fmt.Errorf("-chaos-permanent %g outside [0, 1]", o.ChaosPerm)
	}
	if o.ChaosRate > 0 && !migratesPages(o.Policy) {
		return fmt.Errorf("-chaos-rate needs a migrating policy; all-dram never migrates")
	}
	if !obsv.ValidLogFormat(o.LogFormat) {
		return fmt.Errorf("unknown -log-format %q (text or json)", o.LogFormat)
	}
	if o.Serve != "" && o.Serve == o.Pprof {
		return fmt.Errorf("-serve and -pprof are both %q; one listener per address", o.Serve)
	}
	if o.Tenants != "" {
		// The fleet path builds one two-tier machine per run and gives every
		// tenant the same engine composition, so it composes with chaos (the
		// injector is machine-wide) but not with -tiers or the fixed
		// non-migrating arms.
		if o.Tiers != "" {
			return fmt.Errorf("-tenants is not supported with -tiers (the fleet pool is the two-tier DRAM budget)")
		}
		if o.Policy != "thermostat" && !isCompositionPolicy(o.Policy) {
			return fmt.Errorf("-tenants needs a migrating per-tenant engine (-policy thermostat, %s)",
				strings.Join(core.PolicyNames(), ", or "))
		}
		for _, name := range strings.Split(o.Tenants, ",") {
			name = strings.TrimSpace(name)
			if _, ok := workload.ByName(name); !ok {
				return fmt.Errorf("unknown tenant application %q (try -list)", name)
			}
		}
	}
	if o.Tiers != "" {
		// A deep hierarchy only makes sense under an engine that migrates
		// between its tiers: the paper's arm or any tracker × policy
		// composition.
		if o.Policy != "thermostat" && !isCompositionPolicy(o.Policy) {
			return fmt.Errorf("-tiers needs a migrating engine (-policy thermostat, %s)",
				strings.Join(core.PolicyNames(), ", or "))
		}
		if o.ChaosRate > 0 {
			return fmt.Errorf("-chaos-rate is not supported with -tiers")
		}
		for _, name := range strings.Split(o.Tiers, ",") {
			name = strings.TrimSpace(name)
			if _, ok := mem.Preset(name, 0); !ok {
				return fmt.Errorf("unknown device preset %q (presets: %s)",
					name, strings.Join(mem.PresetNames(), ", "))
			}
		}
	}
	return nil
}
