package main

import (
	"fmt"
	"strings"

	"thermostat/internal/daemon"
	"thermostat/internal/workload"
)

// options captures every flag value that validation inspects, so the
// validator is a pure function the tests drive directly.
type options struct {
	App          string
	Policy       string
	Tracker      string
	Scale        string
	Slowdown     float64
	IdleSecs     float64
	Duration     float64
	Tiers        string
	Tenants      string
	ChaosRate    float64
	ChaosPerm    float64
	Serve        string
	Pprof        string
	LogFormat    string
	Footprint    string
	ShardWorkers int
}

// splitList turns a comma-separated flag value into the config-layer list
// form ("" means none; entries keep their padding for the validator's
// TrimSpace handling).
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// validate rejects inconsistent flag combinations before any simulation
// state is built, with a one-line usage error per defect. The rules live in
// daemon.Config.Validate — one copy shared with cmd/repro and thermostatd —
// and this adapter only maps the flag set onto the config struct. The CLI
// additionally requires an app (the config layer leaves it optional for
// repro's multi-app runs).
func validate(o options) error {
	if _, ok := workload.ByName(o.App); !ok {
		return fmt.Errorf("unknown application %q (try -list)", o.App)
	}
	if o.Policy == "" {
		return fmt.Errorf("unknown policy %q (thermostat, idle-demote, all-dram, or a composition policy)", o.Policy)
	}
	cfg := daemon.Config{
		App:          o.App,
		Policy:       o.Policy,
		Tracker:      o.Tracker,
		Scale:        o.Scale,
		SlowdownPct:  o.Slowdown,
		IdleWindowS:  o.IdleSecs,
		DurationS:    o.Duration,
		Footprint:    o.Footprint,
		ShardWorkers: o.ShardWorkers,
		Tiers:        splitList(o.Tiers),
		Tenants:      splitList(o.Tenants),
		Chaos:        daemon.ChaosConfig{Rate: o.ChaosRate, PermanentFraction: o.ChaosPerm},
		Serve:        o.Serve,
		Pprof:        o.Pprof,
		LogFormat:    o.LogFormat,
	}
	return cfg.Validate()
}
