package main

import (
	"fmt"
	"strings"

	"thermostat/internal/mem"
	"thermostat/internal/workload"
)

// options captures every flag value that validation inspects, so the
// validator is a pure function the tests drive directly.
type options struct {
	App       string
	Policy    string
	Scale     string
	Slowdown  float64
	IdleSecs  float64
	Duration  float64
	Tiers     string
	ChaosRate float64
	ChaosPerm float64
}

// validate rejects inconsistent flag combinations before any simulation
// state is built, with a one-line usage error per defect — conditions that
// previously surfaced as mid-run fatals (unknown presets, -tiers under the
// wrong policy) fail here instead.
func validate(o options) error {
	if _, ok := workload.ByName(o.App); !ok {
		return fmt.Errorf("unknown application %q (try -list)", o.App)
	}
	switch o.Policy {
	case "thermostat", "idle-demote", "all-dram":
	default:
		return fmt.Errorf("unknown policy %q (thermostat, idle-demote, or all-dram)", o.Policy)
	}
	switch o.Scale {
	case "tiny", "bench", "repro":
	default:
		return fmt.Errorf("unknown scale %q (tiny, bench, or repro)", o.Scale)
	}
	if o.Duration < 0 {
		return fmt.Errorf("-duration %g is negative", o.Duration)
	}
	if o.Policy == "thermostat" && o.Slowdown <= 0 {
		return fmt.Errorf("-slowdown %g must be positive for -policy thermostat", o.Slowdown)
	}
	if o.Policy == "idle-demote" && o.IdleSecs <= 0 {
		return fmt.Errorf("-idle-window %g must be positive for -policy idle-demote", o.IdleSecs)
	}
	if o.ChaosRate < 0 || o.ChaosRate > 1 {
		return fmt.Errorf("-chaos-rate %g outside [0, 1]", o.ChaosRate)
	}
	if o.ChaosPerm < 0 || o.ChaosPerm > 1 {
		return fmt.Errorf("-chaos-permanent %g outside [0, 1]", o.ChaosPerm)
	}
	if o.ChaosRate > 0 && o.Policy == "all-dram" {
		return fmt.Errorf("-chaos-rate needs a migrating policy (thermostat or idle-demote); all-dram never migrates")
	}
	if o.Tiers != "" {
		if o.Policy != "thermostat" {
			return fmt.Errorf("-tiers only runs under -policy thermostat")
		}
		if o.ChaosRate > 0 {
			return fmt.Errorf("-chaos-rate is not supported with -tiers")
		}
		for _, name := range strings.Split(o.Tiers, ",") {
			name = strings.TrimSpace(name)
			if _, ok := mem.Preset(name, 0); !ok {
				return fmt.Errorf("unknown device preset %q (presets: %s)",
					name, strings.Join(mem.PresetNames(), ", "))
			}
		}
	}
	return nil
}
