// Command promlint validates a Prometheus text-format scrape against the
// strict parser the observability plane's tests use — CI curls /metrics
// from a live run and pipes the body through this:
//
//	curl -s localhost:9090/metrics | promlint
//	promlint scrape.prom
//
// Exit status 0 means every family parsed (HELP before TYPE, legal names
// and escapes, no duplicate families or samples); 1 means the scrape is
// malformed, with the defect on stderr.
package main

import (
	"fmt"
	"io"
	"os"

	"thermostat/internal/obsv"
)

func main() {
	var r io.Reader = os.Stdin
	name := "<stdin>"
	if len(os.Args) > 1 {
		if len(os.Args) > 2 {
			fmt.Fprintln(os.Stderr, "usage: promlint [scrape-file]")
			os.Exit(2)
		}
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			os.Exit(1)
		}
		defer f.Close()
		r, name = f, os.Args[1]
	}
	fams, err := obsv.ParseProm(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", name, err)
		os.Exit(1)
	}
	samples := 0
	for _, f := range fams {
		samples += len(f.Samples)
	}
	fmt.Printf("%s: %d families, %d samples, all valid\n", name, len(fams), samples)
}
