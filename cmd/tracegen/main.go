// Command tracegen records an application model's access stream to a trace
// file, inspects traces, and replays them under a policy:
//
//	tracegen -app redis -n 1000000 -out redis.trace
//	tracegen -inspect redis.trace
//	tracegen -replay redis.trace -policy thermostat
//
// It also seeds the trace decoder's go-fuzz corpus from the application
// generators (committed under internal/trace/testdata/fuzz):
//
//	tracegen -fuzz-corpus internal/trace/testdata/fuzz
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"thermostat/internal/addr"
	"thermostat/internal/core"
	"thermostat/internal/harness"
	"thermostat/internal/sim"
	"thermostat/internal/trace"
	"thermostat/internal/workload"
)

func main() {
	var (
		appFlag = flag.String("app", "redis", "application model to record")
		n       = flag.Uint64("n", 1_000_000, "number of accesses to record")
		out     = flag.String("out", "", "output trace path (record mode)")
		inspect = flag.String("inspect", "", "trace path to summarize")
		replay  = flag.String("replay", "", "trace path to replay")
		polFlag = flag.String("policy", "thermostat", "replay policy: thermostat or all-dram")
		scale   = flag.Uint64("scale", 64, "footprint divisor for recording")
		seed    = flag.Uint64("seed", 1, "random seed")
		fuzzDir = flag.String("fuzz-corpus", "", "seed go-fuzz corpus files for internal/trace into this testdata/fuzz directory")
	)
	flag.Parse()

	switch {
	case *inspect != "":
		if err := doInspect(*inspect); err != nil {
			fatal(err)
		}
	case *replay != "":
		if err := doReplay(*replay, *polFlag); err != nil {
			fatal(err)
		}
	case *out != "":
		if err := doRecord(*appFlag, *out, *n, *scale, *seed); err != nil {
			fatal(err)
		}
	case *fuzzDir != "":
		if err := doFuzzCorpus(*fuzzDir, *seed); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("one of -out, -inspect, -replay, or -fuzz-corpus is required"))
	}
}

// newRecordingApp builds an initialized application model plus the trace
// region table matching its scaled footprint.
func newRecordingApp(appName string, scale, seed uint64) (*workload.App, []trace.RegionInfo, error) {
	spec, ok := workload.ByName(appName)
	if !ok {
		return nil, nil, fmt.Errorf("unknown application %q", appName)
	}
	app, err := workload.NewApp(spec, scale, seed)
	if err != nil {
		return nil, nil, err
	}
	var footprint uint64
	var regions []trace.RegionInfo
	for _, seg := range spec.Segments {
		size := seg.Bytes / scale
		if size < addr.PageSize2M {
			size = addr.PageSize2M
		}
		size = (size + addr.PageSize2M - 1) / addr.PageSize2M * addr.PageSize2M
		regions = append(regions, trace.RegionInfo{Size: size, Huge: true})
		footprint += size
	}
	m, err := sim.New(sim.DefaultConfig(footprint*2, footprint))
	if err != nil {
		return nil, nil, err
	}
	if err := app.Init(m); err != nil {
		return nil, nil, err
	}
	return app, regions, nil
}

// encodeTrace records n accesses of an initialized app into w.
func encodeTrace(w *trace.Writer, app *workload.App, n uint64) error {
	for i := uint64(0); i < n; i++ {
		v, wr := app.Next()
		if err := w.Write(trace.Record{V: v, Write: wr}); err != nil {
			return err
		}
	}
	return w.Flush()
}

func doRecord(appName, path string, n, scale, seed uint64) error {
	app, regions, err := newRecordingApp(appName, scale, seed)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f, regions, app.ComputeNs())
	if err != nil {
		return err
	}
	if err := encodeTrace(w, app, n); err != nil {
		return err
	}
	fmt.Printf("recorded %d accesses of %s to %s\n", n, appName, path)
	return nil
}

// doFuzzCorpus seeds the go-fuzz corpus for internal/trace from the
// application generators: realistic encoded streams (plus truncations of
// them) for FuzzReader, and address triples drawn from the access streams
// for FuzzRoundTrip. Files use the standard `go test fuzz v1` encoding so
// `go test -fuzz` and plain `go test` both pick them up from testdata/fuzz.
func doFuzzCorpus(dir string, seed uint64) error {
	apps := []string{"redis", "mysql-tpcc", "web-search"}
	const records = 256
	for _, name := range apps {
		app, regions, err := newRecordingApp(name, 4096, seed)
		if err != nil {
			return err
		}
		var buf bytes.Buffer
		w, err := trace.NewWriter(&buf, regions, app.ComputeNs())
		if err != nil {
			return err
		}
		if err := encodeTrace(w, app, records); err != nil {
			return err
		}
		data := buf.Bytes()
		if err := writeCorpusFile(filepath.Join(dir, "FuzzReader", "seed-"+name),
			"[]byte("+strconv.Quote(string(data))+")"); err != nil {
			return err
		}
		// A mid-record truncation exercises the decoder's error paths.
		if err := writeCorpusFile(filepath.Join(dir, "FuzzReader", "seed-"+name+"-truncated"),
			"[]byte("+strconv.Quote(string(data[:len(data)*2/3]))+")"); err != nil {
			return err
		}

		// Three addresses from the live access stream seed the round-trip
		// fuzzer with realistic virtual-address deltas.
		var triple [3]uint64
		for i := range triple {
			v, _ := app.Next()
			triple[i] = uint64(v)
		}
		if err := writeCorpusFile(filepath.Join(dir, "FuzzRoundTrip", "seed-"+name),
			fmt.Sprintf("uint64(%d)\nuint64(%d)\nuint64(%d)", triple[0], triple[1], triple[2])); err != nil {
			return err
		}
	}
	fmt.Printf("seeded fuzz corpus for %d apps under %s\n", len(apps), dir)
	return nil
}

// writeCorpusFile writes one go-fuzz corpus entry in `go test fuzz v1`
// format.
func writeCorpusFile(path, body string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, []byte("go test fuzz v1\n"+body+"\n"), 0o644)
}

func doInspect(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var count, writes uint64
	pages2M := map[uint64]uint64{}
	for {
		rec, err := r.Read()
		if err != nil {
			break
		}
		count++
		if rec.Write {
			writes++
		}
		pages2M[rec.V.PageNum2M()]++
	}
	fmt.Printf("records:        %d\n", count)
	fmt.Printf("writes:         %d (%.1f%%)\n", writes, 100*float64(writes)/float64(count))
	fmt.Printf("regions:        %d\n", len(r.Regions()))
	fmt.Printf("compute_ns:     %d\n", r.ComputeNs())
	fmt.Printf("2MB pages seen: %d\n", len(pages2M))
	return nil
}

func doReplay(path, polName string) error {
	rp, err := trace.NewReplay("replay", func() (*trace.Reader, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		return trace.NewReader(f)
	})
	if err != nil {
		return err
	}
	var footprint uint64
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	hdr, err := trace.NewReader(f)
	f.Close()
	if err != nil {
		return err
	}
	for _, reg := range hdr.Regions() {
		footprint += reg.Size
	}

	sc := harness.Bench()
	cfg := sim.DefaultConfig(footprint*2, footprint+64<<20)
	cfg.TLB.L1Entries, cfg.TLB.L2Entries = 4, 32
	m, err := sim.New(cfg)
	if err != nil {
		return err
	}
	var pol sim.Policy = sim.NullPolicy{Interval: sc.PeriodNs}
	if polName == "thermostat" {
		g, err := sc.Group(3)
		if err != nil {
			return err
		}
		pol = core.NewEngine(g, 1)
	}
	res, err := sim.Run(m, rp, pol, sim.RunConfig{
		DurationNs: sc.DurationNs, WarmupNs: sc.WarmupNs, WindowNs: sc.PeriodNs,
	})
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d ops (%d trace loops) in %.1fs simulated\n",
		res.Ops, rp.Loops(), float64(res.DurationNs)/1e9)
	fmt.Printf("throughput: %.0f ops/s, cold fraction: %.1f%%\n",
		res.Throughput, res.FinalFootprint.ColdFraction()*100)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
