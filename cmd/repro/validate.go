package main

import (
	"fmt"
	"strings"

	"thermostat/internal/daemon"
)

// options captures every flag value that validation inspects, so the
// validator is a pure function the tests drive directly (same shape as
// cmd/thermostat-sim's).
type options struct {
	Exps      string
	Scale     string
	Apps      string
	Slowdown  float64
	Duration  float64
	Serve     string
	Pprof     string
	LogFormat string
}

// experiments is the set -exp accepts, including the opt-in extras 'all'
// does not run.
var experiments = []string{
	"all", "fig1", "naive", "fig2", "table1", "table2", "fig3", "colddata",
	"fig11", "table3", "table4", "baselines", "ablations",
	"ntier", "matrix", "fleet", "scale",
}

func knownExperiment(name string) bool {
	for _, e := range experiments {
		if e == name {
			return true
		}
	}
	return false
}

// validate rejects inconsistent flag combinations before any simulation
// state is built, with a one-line usage error per defect. The experiment
// list is repro's own; everything else defers to daemon.Config.Validate,
// the one copy of the rules shared with cmd/thermostat-sim and thermostatd.
// Every repro run drives the paper's thermostat arm, so the config maps
// with that policy fixed.
func validate(o options) error {
	for _, e := range strings.Split(o.Exps, ",") {
		e = strings.TrimSpace(e)
		if !knownExperiment(e) {
			return fmt.Errorf("unknown experiment %q (experiments: %s)",
				e, strings.Join(experiments, ", "))
		}
	}
	var apps []string
	if o.Apps != "" {
		apps = strings.Split(o.Apps, ",")
	}
	cfg := daemon.Config{
		Apps:        apps,
		Policy:      "thermostat",
		Scale:       o.Scale,
		SlowdownPct: o.Slowdown,
		DurationS:   o.Duration,
		Serve:       o.Serve,
		Pprof:       o.Pprof,
		LogFormat:   o.LogFormat,
	}
	return cfg.Validate()
}
