package main

import (
	"fmt"
	"strings"

	"thermostat/internal/obsv"
	"thermostat/internal/workload"
)

// options captures every flag value that validation inspects, so the
// validator is a pure function the tests drive directly (same shape as
// cmd/thermostat-sim's).
type options struct {
	Exps      string
	Scale     string
	Apps      string
	Slowdown  float64
	Duration  float64
	Serve     string
	Pprof     string
	LogFormat string
}

// experiments is the set -exp accepts, including the opt-in extras 'all'
// does not run.
var experiments = []string{
	"all", "fig1", "naive", "fig2", "table1", "table2", "fig3", "colddata",
	"fig11", "table3", "table4", "baselines", "ablations",
	"ntier", "matrix", "fleet", "scale",
}

func knownExperiment(name string) bool {
	for _, e := range experiments {
		if e == name {
			return true
		}
	}
	return false
}

// validate rejects inconsistent flag combinations before any simulation
// state is built, with a one-line usage error per defect.
func validate(o options) error {
	for _, e := range strings.Split(o.Exps, ",") {
		e = strings.TrimSpace(e)
		if !knownExperiment(e) {
			return fmt.Errorf("unknown experiment %q (experiments: %s)",
				e, strings.Join(experiments, ", "))
		}
	}
	switch o.Scale {
	case "tiny", "bench", "repro":
	default:
		return fmt.Errorf("unknown scale %q (tiny, bench, or repro)", o.Scale)
	}
	if o.Apps != "" {
		for _, name := range strings.Split(o.Apps, ",") {
			name = strings.TrimSpace(name)
			if _, ok := workload.ByName(name); !ok {
				return fmt.Errorf("unknown application %q", name)
			}
		}
	}
	if o.Slowdown <= 0 {
		return fmt.Errorf("-slowdown %g must be positive", o.Slowdown)
	}
	if o.Duration < 0 {
		return fmt.Errorf("-duration %g is negative", o.Duration)
	}
	if !obsv.ValidLogFormat(o.LogFormat) {
		return fmt.Errorf("unknown -log-format %q (text or json)", o.LogFormat)
	}
	if o.Serve != "" && o.Serve == o.Pprof {
		return fmt.Errorf("-serve and -pprof are both %q; one listener per address", o.Serve)
	}
	return nil
}
