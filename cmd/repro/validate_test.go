package main

import (
	"strings"
	"testing"
)

// valid returns an option set that passes validation; each case mutates one
// field off it.
func valid() options {
	return options{Exps: "all", Scale: "repro", Slowdown: 3}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	if err := validate(valid()); err != nil {
		t.Fatalf("default-shaped options rejected: %v", err)
	}
}

func TestValidateAcceptsCombos(t *testing.T) {
	o := valid()
	o.Exps, o.Apps = "fig1, table1 ,fleet", "redis, web-search"
	o.Serve, o.Pprof, o.LogFormat = "localhost:9090", "localhost:6060", "json"
	if err := validate(o); err != nil {
		t.Fatalf("options rejected: %v", err)
	}
	o = valid()
	o.LogFormat = "" // empty means the text default
	if err := validate(o); err != nil {
		t.Fatalf("empty log format rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*options)
		want   string // substring of the one-line usage error
	}{
		{"unknown experiment", func(o *options) { o.Exps = "fig1,nope" }, "unknown experiment"},
		{"unknown scale", func(o *options) { o.Scale = "huge" }, "unknown scale"},
		{"unknown app", func(o *options) { o.Apps = "redis,nope" }, "unknown application"},
		{"nonpositive slowdown", func(o *options) { o.Slowdown = 0 }, "-slowdown"},
		{"negative duration", func(o *options) { o.Duration = -1 }, "negative"},
		{"unknown log format", func(o *options) { o.LogFormat = "yaml" }, "-log-format"},
		{"serve and pprof collide", func(o *options) {
			o.Serve = "localhost:9090"
			o.Pprof = "localhost:9090"
		}, "one listener per address"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := valid()
			tc.mutate(&o)
			err := validate(o)
			if err == nil {
				t.Fatalf("options %+v accepted", o)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("usage error spans lines: %q", err)
			}
		})
	}
}
