// Command repro regenerates every table and figure from the paper's
// evaluation (see DESIGN.md for the experiment index):
//
//	repro -exp all                     # everything, repro scale
//	repro -exp fig1,table1 -scale bench
//	repro -exp colddata -apps cassandra,redis
//	repro -exp fig11 -csv out/         # also dump CSVs
//
// Experiments: fig1, naive, fig2, table1, table2, fig3, colddata (figures
// 5-10), fig11, table3, table4, baselines (policy comparison), ablations
// (design-choice studies), ntier (DRAM/CXL/NVM sweep; not part of 'all'),
// matrix (tracker × policy × workload × topology zoo; not part of 'all'),
// fleet (multi-tenant datacenter-night arbitration scenario; not part of
// 'all' — writes results/fleet_night.{txt,csv}), scale (simulator scaling
// sweep, 1 GB to 1 TB dense vs sparse; not part of 'all' — writes
// results/BENCH_scale.{json,txt} and applies the scaling acceptance gate).
//
// Independent runs fan out across -workers goroutines (default: all cores).
// Results are bit-for-bit identical at any worker count; -workers 1 is the
// exact old serial path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"time"

	"thermostat/internal/harness"
	"thermostat/internal/obsv"
	"thermostat/internal/report"
	"thermostat/internal/stats"
	"thermostat/internal/workload"
)

// logger is the process-wide structured logger, configured by -log-format
// in main before any run starts.
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiments or 'all'")
		scaleFlag = flag.String("scale", "repro", "scale profile: tiny, bench, repro")
		appsFlag  = flag.String("apps", "", "comma-separated app subset (default: all six)")
		slowdown  = flag.Float64("slowdown", 3, "tolerable slowdown percent for Thermostat runs")
		csvDir    = flag.String("csv", "", "directory to also write CSV outputs into")
		svgDir    = flag.String("svg", "", "directory to also render SVG figures into")
		seed      = flag.Uint64("seed", 1, "random seed")
		duration  = flag.Float64("duration", 0, "override run length in simulated seconds")
		workers   = flag.Int("workers", 0, "goroutines fanning independent runs out (0 = all cores, 1 = serial; results are identical at any setting)")
		outDir    = flag.String("results", "results", "directory the fleet and scale experiments write their committed artifacts into")
		serveAddr = flag.String("serve", "", "serve the live observability plane (/metrics, /status, /tenants, /dump, pprof) on this address (e.g. localhost:9090) for the duration of the run")
		pprofAddr = flag.String("pprof", "", "additional address for the same observability server (e.g. localhost:6060)")
		logFormat = flag.String("log-format", "text", "progress log format: text or json")
	)
	flag.Parse()

	if err := validate(options{
		Exps: *expFlag, Scale: *scaleFlag, Apps: *appsFlag,
		Slowdown: *slowdown, Duration: *duration,
		Serve: *serveAddr, Pprof: *pprofAddr, LogFormat: *logFormat,
	}); err != nil {
		fatal(err)
	}
	logger, _ = obsv.NewLogger(os.Stderr, *logFormat) // format vetted above

	sc, err := scaleByName(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	sc.Seed = *seed
	if *duration > 0 {
		sc.DurationNs = int64(*duration * 1e9)
		if sc.WarmupNs >= sc.DurationNs {
			sc.WarmupNs = sc.DurationNs / 5
		}
	}

	opt := harness.Options{Scale: sc, SlowdownPct: *slowdown, Workers: *workers}
	if *serveAddr != "" || *pprofAddr != "" {
		pub := obsv.NewPublisher()
		pub.SetInfo(obsv.Info{
			Binary: "repro", App: *appsFlag, Policy: "thermostat",
			Scale: *scaleFlag, Seed: *seed, Workers: *workers,
		})
		var servers []*obsv.Server
		for _, addr := range serveAddrs(*serveAddr, *pprofAddr) {
			srv, bound, err := obsv.Serve(addr, pub)
			if err != nil {
				fatal(err)
			}
			servers = append(servers, srv)
			logger.Info("observability server listening",
				"addr", "http://"+bound, "endpoints", "/metrics /healthz /status /tenants /dump /debug/pprof")
		}
		// ^C or SIGTERM drains in-flight scrapes before exiting instead of
		// cutting connections mid-response.
		stop := obsv.ShutdownOnSignal(5*time.Second, logger, servers...)
		defer stop()
		pub.SetPhase(obsv.PhaseRunning)
		defer pub.SetPhase(obsv.PhaseDone)
		opt.Publisher = pub
	}
	if *appsFlag != "" {
		for _, name := range strings.Split(*appsFlag, ",") {
			spec, ok := workload.ByName(strings.TrimSpace(name))
			if !ok {
				fatal(fmt.Errorf("unknown application %q", name))
			}
			opt.Apps = append(opt.Apps, spec)
		}
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	selected := func(name string) bool { return all || want[name] }

	emit := func(name string, t *report.Table) {
		fmt.Println(t.String())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, name, t); err != nil {
				fatal(err)
			}
		}
	}

	// Experiments that share the paired baseline/Thermostat runs.
	needRuns := selected("fig3") || selected("table2") || selected("colddata") ||
		selected("table3") || selected("table4")
	var runs map[string]*harness.AppRun
	if needRuns {
		logger.Info("running baseline + thermostat pairs", "scale", sc.Name)
		runs, err = harness.RunAll(opt)
		if err != nil {
			fatal(err)
		}
	}

	if selected("fig1") {
		logger.Info("running fig1 (Accessed-bit idle fractions)")
		r, err := harness.Fig1(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Println(r.Bar())
		emit("fig1", r.Table())
		if *svgDir != "" {
			apps := opt.Apps
			if len(apps) == 0 {
				apps = workload.All()
			}
			var labels []string
			var vals []float64
			for _, spec := range apps {
				labels = append(labels, spec.Name)
				vals = append(vals, r.IdleFrac[spec.Name]*100)
			}
			writeSVG(*svgDir, "fig1", &report.BarPlot{
				Title: "Figure 1: 2MB pages idle for 10s", YLabel: "idle fraction (%)",
				Labels: labels, Groups: [][]float64{vals},
			})
		}
	}
	if selected("naive") {
		logger.Info("running naive idle-bit placement on redis")
		n, err := harness.NaivePlacement(workload.Redis(), opt)
		if err != nil {
			fatal(err)
		}
		t := report.NewTable("Naive Accessed-bit placement (Figure 1 caption check)",
			"application", "slowdown_pct", "cold_fraction_pct", "demotions", "promotions")
		t.AddF(n.App, n.Slowdown*100, n.ColdFraction*100, n.Demotions, n.Promotions)
		emit("naive", t)
	}
	if selected("fig2") {
		logger.Info("running fig2 (Accessed-bit correlation scatter)")
		r, err := harness.Fig2(opt)
		if err != nil {
			fatal(err)
		}
		emit("fig2", r.Table())
		if *svgDir != "" {
			var xs, ys []float64
			for _, pt := range r.Points {
				xs = append(xs, float64(pt.HotRegions))
				ys = append(ys, pt.RatePerSec)
			}
			writeSVG(*svgDir, "fig2", &report.ScatterPlot{
				Title:  fmt.Sprintf("Figure 2: Redis (Pearson r = %.2f)", r.Pearson),
				XLabel: "hot 4KB regions per 2MB page", YLabel: "true accesses/sec",
				X: xs, Y: ys,
			})
		}
	}
	if selected("table1") {
		logger.Info("running table1 (huge page gains)")
		rows, err := harness.Table1(opt)
		if err != nil {
			fatal(err)
		}
		emit("table1", harness.Table1Table(rows))
	}
	if selected("table2") {
		emit("table2", harness.Table2Table(harness.Table2(runs, opt)))
	}
	if selected("fig3") {
		series := harness.Fig3(runs, opt)
		emit("fig3", harness.Fig3Table(series))
		if *svgDir != "" {
			var ss []*stats.Series
			for _, s := range series {
				ss = append(ss, s.Rate)
			}
			target := 0.0
			if len(series) > 0 {
				target = series[0].TargetRate
			}
			writeSVG(*svgDir, "fig3", &report.LinePlot{
				Title:  "Figure 3: slow memory access rate over time",
				XLabel: "time (s)", YLabel: "accesses/sec (paper units)",
				Series: ss, HLine: target,
			})
		}
	}
	if selected("colddata") {
		for _, f := range harness.ColdData(runs, opt) {
			emit("colddata-"+f.App, f.Table())
			if *svgDir != "" {
				writeSVG(*svgDir, "colddata-"+f.App, &report.LinePlot{
					Title: fmt.Sprintf("Cold data over time: %s (slowdown %.1f%%)",
						f.App, f.Slowdown*100),
					XLabel: "time (s)", YLabel: "memory footprint (GB)",
					Series:  []*stats.Series{f.Cold2M, f.Cold4K, f.Hot2M, f.Hot4K},
					Stacked: true,
				})
			}
		}
	}
	if selected("fig11") {
		logger.Info("running fig11 (slowdown sweep)")
		rows, err := harness.Fig11(opt)
		if err != nil {
			fatal(err)
		}
		emit("fig11", harness.Fig11Table(rows))
		if *svgDir != "" {
			byTarget := map[float64][]float64{}
			var labels []string
			seen := map[string]bool{}
			for _, r := range rows {
				if !seen[r.App] {
					seen[r.App] = true
					labels = append(labels, r.App)
				}
				byTarget[r.SlowdownPct] = append(byTarget[r.SlowdownPct], r.ColdFraction*100)
			}
			writeSVG(*svgDir, "fig11", &report.BarPlot{
				Title:  "Figure 11: cold fraction vs tolerable slowdown",
				YLabel: "cold fraction (%)", Labels: labels,
				Groups:     [][]float64{byTarget[3], byTarget[6], byTarget[10]},
				GroupNames: []string{"3%", "6%", "10%"},
			})
		}
	}
	if selected("table3") {
		emit("table3", harness.Table3Table(harness.Table3(runs, opt)))
	}
	if selected("table4") {
		rows, err := harness.Table4(runs, opt)
		if err != nil {
			fatal(err)
		}
		emit("table4", harness.Table4Table(rows))
	}
	if selected("baselines") {
		logger.Info("running baseline policy comparison")
		apps := opt.Apps
		if len(apps) == 0 {
			apps = []workload.Spec{workload.Cassandra(workload.WriteHeavy), workload.Redis()}
		}
		for _, spec := range apps {
			_, t, err := harness.CompareBaselines(spec, opt)
			if err != nil {
				fatal(err)
			}
			emit("baselines-"+spec.Name, t)
		}
	}
	if selected("ablations") {
		runAblations(opt, emit)
	}
	// The policy matrix is opt-in like ntier: it compares this repo's
	// tracker × policy zoo head-to-head, which the paper never did.
	if want["matrix"] {
		logger.Info("running policy matrix (tracker × policy × workload × topology)")
		mopt := harness.MatrixOptions{
			Scale: opt.Scale, Apps: opt.Apps,
			SlowdownPct: opt.SlowdownPct, Workers: opt.Workers,
		}
		rep, err := harness.PolicyMatrix(mopt)
		if err != nil {
			fatal(err)
		}
		emit("policy_matrix", rep.Table())
	}
	// The fleet scenario is opt-in like ntier: multi-tenant arbitration is
	// this repo's extension, not part of the paper's evaluation. It renders
	// the seeded "datacenter night" report and writes the committed artifact
	// pair results/fleet_night.{txt,csv}.
	if want["fleet"] {
		logger.Info("running fleet (datacenter night: one hierarchy, four tenants, churn)")
		res, err := harness.FleetNight(opt)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Text)
		if *csvDir != "" {
			if err := writeCSV(*csvDir, "fleet_night", res.Table); err != nil {
				fatal(err)
			}
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		txt := filepath.Join(*outDir, "fleet_night.txt")
		if err := os.WriteFile(txt, []byte(res.Text), 0o644); err != nil {
			fatal(err)
		}
		csv, err := res.TenantCSV()
		if err != nil {
			fatal(err)
		}
		csvPath := filepath.Join(*outDir, "fleet_night.csv")
		if err := os.WriteFile(csvPath, csv, 0o644); err != nil {
			fatal(err)
		}
		logger.Info("wrote fleet night artifacts", "txt", txt, "csv", csvPath)
	}
	// The scaling sweep is opt-in: it benchmarks the simulator itself
	// (1 GB -> 1 TB, dense vs sparse tables, sharded scans) rather than the
	// paper's evaluation, applies the acceptance gate, and writes the
	// committed artifact pair results/BENCH_scale.{json,txt}.
	if want["scale"] {
		runScale(*seed, *outDir, emit)
	}
	// The N-tier sweep is opt-in: it is not part of the paper's evaluation,
	// so 'all' (the paper regeneration) does not include it.
	if want["ntier"] {
		logger.Info("running ntier (DRAM/CXL/NVM sweep)")
		reps, err := harness.NTierSweep(opt, harness.DefaultThreeTier(0))
		if err != nil {
			fatal(err)
		}
		for _, rep := range reps {
			emit("ntier-traffic-"+rep.App, rep.TrafficTable())
			emit("ntier-cost-"+rep.App, rep.CostTable())
		}
	}
}

// The scaling acceptance gate (ISSUE criteria): at 1 TB, sparse state
// bytes per simulated GB within 10% of the dense baseline's, and sparse
// ns/op within 2x of the 1 GB figure.
const (
	scaleGateStateFrac = 0.10
	scaleGateNsOpRatio = 2.0
)

// scaleArtifact is the machine-readable shape results/BENCH_scale.json pins.
type scaleArtifact struct {
	Workload      string                `json:"workload"`
	Seed          uint64                `json:"seed"`
	ShardWorkers  int                   `json:"shard_workers"`
	GateStateFrac float64               `json:"gate_max_state_frac"`
	GateNsOpRatio float64               `json:"gate_max_nsop_ratio"`
	GatePass      bool                  `json:"gate_pass"`
	GateError     string                `json:"gate_error,omitempty"`
	Points        []*harness.ScalePoint `json:"points"`
}

// runScale runs the 1 GB -> 1 TB scaling sweep, prints the table, applies
// the acceptance gate, and pins results/BENCH_scale.{json,txt}.
func runScale(seed uint64, outDir string, emit func(string, *report.Table)) {
	logger.Info("running scale (simulator scaling sweep, 1 GB -> 1 TB)")
	sc := harness.ScaleBenchProfile()
	sc.Seed = seed
	points, err := harness.ScaleSweep(sc, harness.ScaleFootprints(), harness.ScaleShardWorkers)
	if err != nil {
		fatal(err)
	}
	tbl := harness.ScaleTable(points)
	emit("scale", tbl)
	gateErr := harness.CheckScaleGate(points, scaleGateStateFrac, scaleGateNsOpRatio)
	gateLine := fmt.Sprintf("gate: PASS (sparse state/GB <= %.0f%% of dense at 1 TB; ns/op <= %.1fx the 1 GB figure)",
		scaleGateStateFrac*100, scaleGateNsOpRatio)
	if gateErr != nil {
		gateLine = "gate: FAIL: " + gateErr.Error()
	}
	fmt.Println(gateLine)

	art := scaleArtifact{
		Workload: "scale-synth", Seed: seed,
		ShardWorkers:  harness.ScaleShardWorkers,
		GateStateFrac: scaleGateStateFrac, GateNsOpRatio: scaleGateNsOpRatio,
		GatePass: gateErr == nil, Points: points,
	}
	if gateErr != nil {
		art.GateError = gateErr.Error()
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fatal(err)
	}
	js, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fatal(err)
	}
	jsonPath := filepath.Join(outDir, "BENCH_scale.json")
	if err := os.WriteFile(jsonPath, append(js, '\n'), 0o644); err != nil {
		fatal(err)
	}
	txtPath := filepath.Join(outDir, "BENCH_scale.txt")
	if err := os.WriteFile(txtPath, []byte(tbl.String()+"\n"+gateLine+"\n"), 0o644); err != nil {
		fatal(err)
	}
	logger.Info("wrote scaling artifacts", "json", jsonPath, "txt", txtPath)
	if gateErr != nil {
		fatal(gateErr)
	}
}

// runAblations regenerates the design-choice studies DESIGN.md indexes.
func runAblations(opt harness.Options, emit func(string, *report.Table)) {
	cassandra := workload.Cassandra(workload.WriteHeavy)
	aerospike := workload.Aerospike(workload.ReadHeavy)

	logger.Info("ablation: poison budget K")
	if _, t, err := harness.AblationPoisonBudget(cassandra, opt); err != nil {
		fatal(err)
	} else {
		emit("ablation-k", t)
	}
	logger.Info("ablation: sample fraction")
	if _, t, err := harness.AblationSampleFraction(cassandra, opt); err != nil {
		fatal(err)
	} else {
		emit("ablation-fraction", t)
	}
	logger.Info("ablation: accessed-bit prefilter")
	if _, t, err := harness.AblationPrefilter(aerospike, opt); err != nil {
		fatal(err)
	} else {
		emit("ablation-prefilter", t)
	}
	logger.Info("ablation: correction under rotation")
	if _, t, err := harness.AblationCorrection(opt); err != nil {
		fatal(err)
	} else {
		emit("ablation-correction", t)
	}
	logger.Info("ablation: trap placement")
	if _, t, err := harness.AblationTrapPlacement(cassandra, opt); err != nil {
		fatal(err)
	} else {
		emit("ablation-trap", t)
	}
	logger.Info("ablation: slow-memory model")
	if _, t, err := harness.AblationSlowMemMode(cassandra, opt); err != nil {
		fatal(err)
	} else {
		emit("ablation-slowmode", t)
	}
	logger.Info("ablation: §6.1 counters")
	if _, t, err := harness.AblationCounters(opt); err != nil {
		fatal(err)
	} else {
		emit("ablation-counters", t)
	}
}

func scaleByName(name string) (harness.Scale, error) {
	switch name {
	case "tiny":
		return harness.Tiny(), nil
	case "bench":
		return harness.Bench(), nil
	case "repro":
		return harness.Repro(), nil
	default:
		return harness.Scale{}, fmt.Errorf("unknown scale %q (tiny, bench, repro)", name)
	}
}

func writeSVG(dir, name string, plot interface{ WriteSVG(io.Writer) error }) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, name+".svg"))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := plot.WriteSVG(f); err != nil {
		fatal(err)
	}
}

func writeCSV(dir, name string, t *report.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}

// serveAddrs deduplicates the -serve/-pprof addresses, preserving order.
func serveAddrs(addrs ...string) []string {
	var out []string
	seen := map[string]bool{}
	for _, a := range addrs {
		if a == "" || seen[a] {
			continue
		}
		seen[a] = true
		out = append(out, a)
	}
	return out
}

func fatal(err error) {
	logger.Error("repro failed", "err", err)
	os.Exit(1)
}
