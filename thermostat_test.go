package thermostat

import (
	"testing"
)

func TestDefaultParamsMatchPaper(t *testing.T) {
	t.Parallel()
	p := DefaultParams()
	if p.TolerableSlowdownPct != 3 {
		t.Errorf("slowdown = %v, want 3", p.TolerableSlowdownPct)
	}
	if p.SamplePeriodNs != 30e9 {
		t.Errorf("period = %v, want 30s", p.SamplePeriodNs)
	}
	if p.SampleFraction != 0.05 || p.MaxPoisonPerHuge != 50 {
		t.Errorf("sampling params %v/%d", p.SampleFraction, p.MaxPoisonPerHuge)
	}
	if p.SlowMemLatencyNs != 1000 {
		t.Errorf("ts = %v, want 1us", p.SlowMemLatencyNs)
	}
}

func TestNewEngineValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewEngine(Params{}, 1); err == nil {
		t.Fatal("zero params accepted")
	}
	if _, err := NewEngine(DefaultParams(), 1); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadsCatalog(t *testing.T) {
	t.Parallel()
	specs := Workloads()
	if len(specs) != 6 {
		t.Fatalf("Workloads() returned %d, want 6", len(specs))
	}
	for _, s := range specs {
		if _, ok := WorkloadByName(s.Name); !ok {
			t.Errorf("WorkloadByName(%q) failed", s.Name)
		}
	}
	if _, ok := WorkloadByName("aerospike-write-heavy"); !ok {
		t.Error("mix suffix not resolved")
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second scaled run")
	}
	t.Parallel()
	// The quickstart flow through the façade only: custom workload, engine
	// in a retunable group, run, inspect.
	cfg := DefaultMachineConfig(64<<20, 64<<20)
	cfg.TLB.L1Entries, cfg.TLB.L2Entries = 2, 8
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}

	spec := WorkloadSpec{
		Name:      "demo",
		ComputeNs: 4000,
		Segments: []Segment{
			{Name: "hot", Bytes: 8 << 20, Weight: 0.99, Picker: &ZipfPicker{}, WriteFrac: 0.1},
			{Name: "cold", Bytes: 24 << 20, Weight: 0.01, Picker: UniformPicker{}},
		},
	}
	app, err := NewWorkload(spec, 1, 5)
	if err != nil {
		t.Fatal(err)
	}

	p := DefaultParams()
	p.SamplePeriodNs = 200e6
	p.SampleFraction = 0.25
	group, err := NewGroup("demo", p)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngineInGroup(group, 9)

	res, err := Run(m, app, eng, RunConfig{DurationNs: 5e9, WarmupNs: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Throughput <= 0 {
		t.Fatal("run produced nothing")
	}
	if res.FinalFootprint.ColdFraction() < 0.2 {
		t.Fatalf("cold fraction = %v, want most of the cold segment found",
			res.FinalFootprint.ColdFraction())
	}
	// Live retune through the group.
	if err := group.SetTolerableSlowdown(6); err != nil {
		t.Fatal(err)
	}
	if eng.Stats().Demotions == 0 {
		t.Fatal("no demotions recorded")
	}
}

func TestIdleDemoteViaFacade(t *testing.T) {
	t.Parallel()
	cfg := DefaultMachineConfig(64<<20, 64<<20)
	cfg.TLB.L1Entries, cfg.TLB.L2Entries = 2, 8
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec := WorkloadSpec{
		Name:      "demo",
		ComputeNs: 4000,
		Segments: []Segment{
			{Name: "hot", Bytes: 4 << 20, Weight: 1, Picker: UniformPicker{}},
			{Name: "cold", Bytes: 12 << 20, Weight: 0, Picker: UniformPicker{}},
		},
	}
	app, err := NewWorkload(spec, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	pol := &IdleDemote{Interval: 200e6, IdleScans: 3}
	res, err := Run(m, app, pol, RunConfig{DurationNs: 4e9})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalFootprint.Cold() == 0 {
		t.Fatal("idle-demote found nothing")
	}
}

func TestModeConstants(t *testing.T) {
	t.Parallel()
	cfg := DefaultMachineConfig(4<<20, 4<<20)
	if cfg.Mode != EmulatedFault {
		t.Fatal("default mode should be the paper's emulation methodology")
	}
	cfg.Mode = Device
	if _, err := NewMachine(cfg); err != nil {
		t.Fatal(err)
	}
}
