// Benchmarks regenerating every table and figure of the paper's evaluation
// at bench scale (see DESIGN.md's experiment index). Each benchmark runs the
// corresponding experiment end to end and reports its headline numbers as
// custom metrics; run with -v to also see the regenerated rows.
//
// cmd/repro produces the same artifacts at full repro scale.
package thermostat

import (
	"testing"

	"thermostat/internal/harness"
	"thermostat/internal/sim"
	"thermostat/internal/workload"
)

// benchOptions returns a small, fast profile: the shapes survive, absolute
// statistics are noisier than cmd/repro's.
func benchOptions(apps ...workload.Spec) harness.Options {
	sc := harness.Tiny()
	sc.DurationNs = 6e9
	sc.WarmupNs = 15e8
	return harness.Options{Scale: sc, Apps: apps}
}

func BenchmarkFig1IdleFraction(b *testing.B) {
	opt := benchOptions(workload.MySQLTPCC(), workload.Redis())
	for i := 0; i < b.N; i++ {
		res, err := harness.Fig1(opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.IdleFrac["mysql-tpcc"]*100, "mysql_idle_%")
		b.ReportMetric(res.IdleFrac["redis"]*100, "redis_idle_%")
		if i == 0 {
			b.Log("\n" + res.Bar())
		}
	}
}

func BenchmarkFig2AccessedBitCorrelation(b *testing.B) {
	opt := benchOptions()
	opt.Scale.DurationNs = 4e9
	for i := 0; i < b.N; i++ {
		res, err := harness.Fig2(opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Pearson, "pearson_r")
		b.ReportMetric(float64(len(res.Points)), "pages")
	}
}

func BenchmarkTable1HugePageGain(b *testing.B) {
	opt := benchOptions(workload.Redis(), workload.WebSearch())
	for i := 0; i < b.N; i++ {
		rows, err := harness.Table1(opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.App {
			case "redis":
				b.ReportMetric(r.GainPct, "redis_gain_%")
			case "web-search":
				b.ReportMetric(r.GainPct, "websearch_gain_%")
			}
		}
		if i == 0 {
			b.Log("\n" + harness.Table1Table(rows).String())
		}
	}
}

// coldDataBench runs one app's Figure 5-10 style experiment.
func coldDataBench(b *testing.B, spec workload.Spec) {
	b.Helper()
	opt := benchOptions(spec)
	for i := 0; i < b.N; i++ {
		runs, err := harness.RunAll(opt)
		if err != nil {
			b.Fatal(err)
		}
		r := runs[spec.Name]
		b.ReportMetric(r.ColdFraction*100, "cold_%")
		b.ReportMetric(r.Slowdown*100, "slowdown_%")
		if i == 0 {
			for _, f := range harness.ColdData(runs, opt) {
				b.Log("\n" + f.Table().String())
			}
		}
	}
}

func BenchmarkFig5CassandraColdData(b *testing.B) {
	coldDataBench(b, workload.Cassandra(workload.WriteHeavy))
}

func BenchmarkFig6TPCCColdData(b *testing.B) {
	coldDataBench(b, workload.MySQLTPCC())
}

func BenchmarkFig7AerospikeColdData(b *testing.B) {
	coldDataBench(b, workload.Aerospike(workload.ReadHeavy))
}

func BenchmarkFig8RedisColdData(b *testing.B) {
	coldDataBench(b, workload.Redis())
}

func BenchmarkFig9AnalyticsColdData(b *testing.B) {
	coldDataBench(b, workload.InMemAnalytics())
}

func BenchmarkFig10WebSearchColdData(b *testing.B) {
	coldDataBench(b, workload.WebSearch())
}

func BenchmarkFig3SlowMemRate(b *testing.B) {
	opt := benchOptions(workload.MySQLTPCC())
	for i := 0; i < b.N; i++ {
		runs, err := harness.RunAll(opt)
		if err != nil {
			b.Fatal(err)
		}
		series := harness.Fig3(runs, opt)
		if len(series) != 1 {
			b.Fatal("missing series")
		}
		b.ReportMetric(series[0].MeanPostWarmup, "slow_rate_per_s")
		b.ReportMetric(series[0].TargetRate, "target_per_s")
	}
}

func BenchmarkTable2Footprints(b *testing.B) {
	opt := benchOptions(workload.Cassandra(workload.WriteHeavy))
	for i := 0; i < b.N; i++ {
		runs, err := harness.RunAll(opt)
		if err != nil {
			b.Fatal(err)
		}
		rows := harness.Table2(runs, opt)
		b.ReportMetric(rows[0].RSSGB, "rss_gb")
		b.ReportMetric(rows[0].FileGB, "file_gb")
	}
}

func BenchmarkFig11SlowdownSweep(b *testing.B) {
	opt := benchOptions(workload.MySQLTPCC())
	for i := 0; i < b.N; i++ {
		rows, err := harness.Fig11(opt)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.SlowdownPct {
			case 3:
				b.ReportMetric(r.ColdFraction*100, "cold@3%_%")
			case 10:
				b.ReportMetric(r.ColdFraction*100, "cold@10%_%")
			}
		}
		if i == 0 {
			b.Log("\n" + harness.Fig11Table(rows).String())
		}
	}
}

func BenchmarkTable3MigrationBandwidth(b *testing.B) {
	opt := benchOptions(workload.Redis())
	for i := 0; i < b.N; i++ {
		runs, err := harness.RunAll(opt)
		if err != nil {
			b.Fatal(err)
		}
		rows := harness.Table3(runs, opt)
		b.ReportMetric(rows[0].MigrationMBps, "migration_MBps")
		b.ReportMetric(rows[0].FalseClassMBps, "falseclass_MBps")
	}
}

func BenchmarkTable4CostSavings(b *testing.B) {
	opt := benchOptions(workload.Cassandra(workload.WriteHeavy))
	for i := 0; i < b.N; i++ {
		runs, err := harness.RunAll(opt)
		if err != nil {
			b.Fatal(err)
		}
		rows, err := harness.Table4(runs, opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].SavingsPct[0], "savings@0.33x_%")
		b.ReportMetric(rows[0].SavingsPct[2], "savings@0.2x_%")
	}
}

// BenchmarkAccessPath measures the simulator's raw access throughput (the
// cost of one simulated memory access through TLB, walk, cache, and tiers).
func BenchmarkAccessPath(b *testing.B) {
	m, err := NewMachine(DefaultMachineConfig(64<<20, 64<<20))
	if err != nil {
		b.Fatal(err)
	}
	app, err := NewWorkload(Redis(), 1024, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := app.Init(m); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, w := app.Next()
		if _, err := m.Access(v, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccessBatch measures the batched access engine on the same
// machine and workload as BenchmarkAccessPath; the per-op delta between the
// two is the overhead AccessBatch amortizes (VPID fetch, counter increments,
// per-op call dispatch).
func BenchmarkAccessBatch(b *testing.B) {
	m, err := NewMachine(DefaultMachineConfig(64<<20, 64<<20))
	if err != nil {
		b.Fatal(err)
	}
	app, err := NewWorkload(Redis(), 1024, 1)
	if err != nil {
		b.Fatal(err)
	}
	if err := app.Init(m); err != nil {
		b.Fatal(err)
	}
	const batch = 2048
	reqs := make([]sim.Req, batch)
	lats := make([]int64, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		n := batch
		if rem := b.N - i; rem < n {
			n = rem
		}
		got := app.NextBatch(reqs[:n])
		if err := m.AccessBatch(reqs[:got], 0, lats[:got], nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunRedis measures the end-to-end wall-clock of one seeded
// Thermostat run (redis at tiny scale): workload generation, the access
// path, policy scans and migrations together. This is the single-run
// latency every experiment in the harness pays per grid cell.
func BenchmarkRunRedis(b *testing.B) {
	sc := harness.Tiny()
	sc.DurationNs = 4e9
	sc.WarmupNs = 1e9
	for i := 0; i < b.N; i++ {
		out, err := harness.RunThermostat(workload.Redis(), sc, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(out.Result.Ops), "sim_ops")
		}
	}
}
