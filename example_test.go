package thermostat_test

import (
	"fmt"

	"thermostat"
)

// Example demonstrates the core flow: build a machine, define a workload
// with a hot and a cold segment, run it under Thermostat, and observe that
// the cold segment was transparently placed in slow memory.
func Example() {
	cfg := thermostat.DefaultMachineConfig(128<<20, 128<<20)
	cfg.TLB.L1Entries, cfg.TLB.L2Entries = 2, 8 // scaled reach for a scaled footprint
	m, err := thermostat.NewMachine(cfg)
	if err != nil {
		panic(err)
	}

	spec := thermostat.WorkloadSpec{
		Name:      "example",
		ComputeNs: 4000,
		Segments: []thermostat.Segment{
			{Name: "hot", Bytes: 8 << 20, Weight: 1, Picker: &thermostat.ZipfPicker{}},
			{Name: "cold", Bytes: 24 << 20, Weight: 0, Picker: thermostat.UniformPicker{}},
		},
	}
	app, err := thermostat.NewWorkload(spec, 1, 7)
	if err != nil {
		panic(err)
	}

	params := thermostat.DefaultParams() // 3% tolerable slowdown
	params.SamplePeriodNs = 200e6        // compressed scan interval for the demo
	params.SampleFraction = 0.25
	engine, err := thermostat.NewEngine(params, 7)
	if err != nil {
		panic(err)
	}

	res, err := thermostat.Run(m, app, engine, thermostat.RunConfig{DurationNs: 5e9})
	if err != nil {
		panic(err)
	}

	fp := res.FinalFootprint
	fmt.Printf("cold segment found: %v\n", fp.ColdFraction() > 0.5)
	// The Zipf-hot working set stays in DRAM (a few pages may be split
	// for sampling at any instant, so count both grains).
	fmt.Printf("hot data still in DRAM: %v\n", fp.Hot2M+fp.Hot4K >= 4<<20)
	// Output:
	// cold segment found: true
	// hot data still in DRAM: true
}
