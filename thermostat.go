// Package thermostat is an application-transparent, huge-page-aware page
// management system for two-tiered main memory, reproducing "Thermostat:
// Application-transparent Page Management for Two-tiered Main Memory"
// (Agarwal & Wenisch, ASPLOS 2017) as a self-contained Go simulation.
//
// The library has three layers:
//
//   - A machine model (Machine): an ordered hierarchy of memory tiers (the
//     paper's two-tier DRAM+slow system by default, arbitrary N-tier
//     hierarchies via DefaultTieredConfig), an x86-64-style 4-level
//     page table with 2MB huge pages, a two-level TLB, nested (EPT-style)
//     page walks, an LLC, and BadgerTrap-style PTE-poisoning fault
//     interception — everything the mechanism interacts with on real
//     hardware, simulated in virtual time.
//
//   - The Thermostat policy (Engine): online huge-page-aware hot/cold
//     classification driven by a single knob, the tolerable slowdown. Every
//     scan interval it splits a random 5% of huge pages, poisons up to 50
//     accessed 4KB children each, estimates per-page access rates from the
//     resulting TLB-miss faults, demotes the coldest pages to slow memory
//     under the rate budget x/(100·ts), and promotes mis-classified pages
//     whose measured rates would breach the budget.
//
//   - Workload models (subpackage-driven, re-exported here): the paper's
//     six cloud applications with their published footprints and access
//     skews, plus a closed-loop runner that measures throughput, slowdown
//     and cold-data fractions.
//
// Quick start:
//
//	m, _ := thermostat.NewMachine(thermostat.DefaultMachineConfig(1<<30, 1<<30))
//	app, _ := thermostat.NewWorkload(thermostat.Redis(), 64, 1)
//	eng, _ := thermostat.NewEngine(thermostat.DefaultParams(), 1)
//	res, _ := thermostat.Run(m, app, eng, thermostat.RunConfig{DurationNs: 60e9})
//	fmt.Printf("cold: %.0f%%\n", res.FinalFootprint.ColdFraction()*100)
package thermostat

import (
	"thermostat/internal/cgroup"
	"thermostat/internal/chaos"
	"thermostat/internal/core"
	"thermostat/internal/hugepaged"
	"thermostat/internal/mem"
	"thermostat/internal/sim"
	"thermostat/internal/telemetry"
	"thermostat/internal/workload"
)

// Machine is the simulated two-tier memory system plus MMU. See sim.Machine
// for the full method set (Access, Demote, Promote, Metrics, ...).
type Machine = sim.Machine

// MachineConfig assembles a Machine.
type MachineConfig = sim.Config

// ChaosConfig configures deterministic fault injection into the migration
// and poisoning machinery (MachineConfig.Chaos). The zero value installs
// no injector; see DESIGN.md "Robustness".
type ChaosConfig = chaos.Config

// FaultReport summarizes a run's chaos fault handling: injections,
// retries, rollbacks, quarantined pages (Machine.FaultReport,
// Engine.FaultReport).
type FaultReport = chaos.Report

// SlowMemMode selects how slow-memory accesses are costed.
type SlowMemMode = sim.SlowMemMode

// Slow-memory costing modes.
const (
	// EmulatedFault reproduces the paper's methodology: slow-tier pages
	// are poisoned and each TLB miss to them costs a ~1us fault.
	EmulatedFault = sim.EmulatedFault
	// Device charges the slow tier's device latency instead.
	Device = sim.Device
)

// App is a workload: it allocates a footprint and produces a closed-loop
// access stream.
type App = sim.App

// Policy is a page-placement policy ticked every scan interval.
type Policy = sim.Policy

// RunConfig schedules a simulation run.
type RunConfig = sim.RunConfig

// RunResult carries throughput, slow-memory rate and footprint series.
type RunResult = sim.RunResult

// Footprint classifies mapped bytes as hot/cold at 2MB/4KB grain.
type Footprint = sim.Footprint

// NullPolicy is the all-DRAM baseline (no placement).
type NullPolicy = sim.NullPolicy

// Params are Thermostat's cgroup-exposed knobs; TolerableSlowdownPct is the
// single headline input.
type Params = cgroup.Params

// Group is a runtime-tunable parameter group shared by processes, like a
// memory cgroup.
type Group = cgroup.Group

// Engine is a composed page-placement engine: a Tracker feeding a
// PlacementPolicy. NewEngine builds the paper's Thermostat composition
// (poison tracker + threshold policy); Compose builds any other cell of the
// tracker × policy matrix.
type Engine = core.Engine

// EngineStats are the engine's lifetime counters.
type EngineStats = core.Stats

// Tracker estimates per-page access rates (the engine's sensing half).
type Tracker = core.Tracker

// PlacementPolicy turns tracker estimates into migrations (the engine's
// acting half). The name avoids clashing with Policy, the sim-level
// interface every engine implements.
type PlacementPolicy = core.Policy

// PlacementStats are a placement policy's lifetime migration counters.
type PlacementStats = core.PlacementStats

// IdleDemote is the naive Accessed-bit baseline (demote pages idle for N
// scans) the paper argues against.
type IdleDemote = core.IdleDemote

// WorkloadSpec declares an application model.
type WorkloadSpec = workload.Spec

// Segment declares one memory segment of a workload (size, traffic share,
// intra-segment distribution).
type Segment = workload.SegmentSpec

// Growth makes a workload's footprint grow at runtime (Memtable fill,
// shuffle spill).
type Growth = workload.GrowthSpec

// Picker is an intra-segment access distribution.
type Picker = workload.Picker

// UniformPicker accesses a segment's pages uniformly.
type UniformPicker = workload.Uniform

// ZipfPicker applies YCSB-style scrambled-Zipfian page popularity.
type ZipfPicker = workload.Zipf

// HotspotPicker sends a fraction of accesses to a small hot page set.
type HotspotPicker = workload.Hotspot

// SweepPicker cycles sequentially through a segment (scans, expiry).
type SweepPicker = workload.Sweep

// AppendPicker writes sequentially into the most recent region (logs).
type AppendPicker = workload.Append

// HotspotSweepPicker combines a hash-scattered hotspot with a background
// sweep — the Redis pattern.
type HotspotSweepPicker = workload.HotspotSweep

// Workload is a runnable application model.
type Workload = workload.App

// Mix selects the read/write ratio for the NoSQL stores.
type Mix = workload.Mix

// Traffic mixes.
const (
	// ReadHeavy is the 95:5 read/write mix.
	ReadHeavy = workload.ReadHeavy
	// WriteHeavy is the 5:95 read/write mix.
	WriteHeavy = workload.WriteHeavy
)

// TierSpec describes one memory tier's hardware: name, capacity,
// latencies, bandwidth and relative cost.
type TierSpec = mem.Spec

// TierID identifies a tier by hierarchy position (0 = fastest).
type TierID = mem.TierID

// MaxTiers bounds hierarchy depth.
const MaxTiers = mem.MaxTiers

// Device presets for building hierarchies.

// DRAMTier returns the paper's DRAM parameters (80ns, cost 1.0).
func DRAMTier(capacity uint64) TierSpec { return mem.DefaultDRAM(capacity) }

// CXLTier returns CXL-expander parameters (250ns, half DRAM cost).
func CXLTier(capacity uint64) TierSpec { return mem.DefaultCXL(capacity) }

// NVMTier returns 3D-XPoint-class parameters (1000ns, a fifth of DRAM cost).
func NVMTier(capacity uint64) TierSpec { return mem.DefaultNVM(capacity) }

// SlowTier returns the paper's generic slow-memory parameters (1000ns, a
// third of DRAM cost).
func SlowTier(capacity uint64) TierSpec { return mem.DefaultSlow(capacity) }

// TierPreset resolves a named device preset ("dram", "cxl", "nvm", "slow").
func TierPreset(name string, capacity uint64) (TierSpec, bool) {
	return mem.Preset(name, capacity)
}

// DefaultTieredConfig returns the default machine over an arbitrary ordered
// hierarchy, fastest first — the N-tier generalization of
// DefaultMachineConfig. With more than two tiers, prefer Device mode so each
// tier's own latency is charged.
func DefaultTieredConfig(tiers ...TierSpec) MachineConfig {
	return sim.DefaultTieredConfig(tiers...)
}

// DefaultMachineConfig returns the paper's evaluated machine: KVM-style
// nested paging with huge host pages, 64/1024-entry TLBs, 45MB LLC, eight
// threads, BadgerTrap slow-memory emulation, and the given tier capacities
// in bytes.
func DefaultMachineConfig(fastBytes, slowBytes uint64) MachineConfig {
	return sim.DefaultConfig(fastBytes, slowBytes)
}

// NewMachine builds a Machine.
func NewMachine(cfg MachineConfig) (*Machine, error) { return sim.New(cfg) }

// DefaultParams returns the paper's evaluated parameters: 3% tolerable
// slowdown, 30s sampling period, 5% sample fraction, 50-page poison budget,
// 1us slow-memory latency.
func DefaultParams() Params { return cgroup.Default() }

// NewGroup validates params into a runtime-tunable group.
func NewGroup(name string, p Params) (*Group, error) { return cgroup.NewGroup(name, p) }

// NewEngine builds a Thermostat engine with its own single-member group.
func NewEngine(p Params, seed uint64) (*Engine, error) {
	g, err := cgroup.NewGroup("thermostat", p)
	if err != nil {
		return nil, err
	}
	return core.NewEngine(g, seed), nil
}

// NewEngineInGroup builds an engine sharing an existing group, so its knobs
// can be retuned at runtime.
func NewEngineInGroup(g *Group, seed uint64) *Engine {
	return core.NewEngine(g, seed)
}

// TrackerNames lists the selectable access trackers.
func TrackerNames() []string { return core.TrackerNames() }

// PolicyNames lists the selectable placement policies.
func PolicyNames() []string { return core.PolicyNames() }

// Compose builds an engine from any registered tracker × policy pair; see
// TrackerNames and PolicyNames. Compose(p, "poison", "threshold", seed) is
// the paper's engine under its composition name.
func Compose(p Params, tracker, policy string, seed uint64) (*Engine, error) {
	g, err := cgroup.NewGroup(tracker+"+"+policy, p)
	if err != nil {
		return nil, err
	}
	return core.ComposeByName(g, tracker, policy, seed)
}

// ComposeInGroup is Compose over an existing runtime-tunable group.
func ComposeInGroup(g *Group, tracker, policy string, seed uint64) (*Engine, error) {
	return core.ComposeByName(g, tracker, policy, seed)
}

// Run drives app under pol on m.
func Run(m *Machine, app App, pol Policy, rc RunConfig) (*RunResult, error) {
	return sim.Run(m, app, pol, rc)
}

// Tenant pairs an application with its own policy for multi-tenant runs.
type Tenant = sim.Tenant

// TenantResult is one tenant's outcome from RunMulti.
type TenantResult = sim.TenantResult

// MultiResult is the outcome of RunMulti.
type MultiResult = sim.MultiResult

// RunMulti drives several tenants on one shared machine (shared TLB, LLC
// and memory tiers), each with its own policy — scope per-tenant engines
// with Engine.SetScope so they manage only their own cgroup's pages.
func RunMulti(m *Machine, tenants []Tenant, rc RunConfig) (*MultiResult, error) {
	return sim.RunMulti(m, tenants, rc)
}

// Slowdown compares a policy run to its all-DRAM baseline: 0.03 means 3%.
func Slowdown(baseline, policy *RunResult) float64 {
	return sim.Slowdown(baseline, policy)
}

// NewWorkload instantiates an application model with its footprint divided
// by scale.
func NewWorkload(spec WorkloadSpec, scale, seed uint64) (*Workload, error) {
	return workload.NewApp(spec, scale, seed)
}

// Workloads returns the paper's six evaluated applications.
func Workloads() []WorkloadSpec { return workload.All() }

// WorkloadByName resolves an application name (see Workloads, plus
// "-read-heavy"/"-write-heavy" suffixes for the NoSQL stores).
func WorkloadByName(name string) (WorkloadSpec, bool) { return workload.ByName(name) }

// The six applications, for direct construction.

// Aerospike is the multi-threaded key-value store model.
func Aerospike(mix Mix) WorkloadSpec { return workload.Aerospike(mix) }

// Cassandra is the wide-column store model.
func Cassandra(mix Mix) WorkloadSpec { return workload.Cassandra(mix) }

// MySQLTPCC is the OLTP database model.
func MySQLTPCC() WorkloadSpec { return workload.MySQLTPCC() }

// Redis is the hotspot key-value store model.
func Redis() WorkloadSpec { return workload.Redis() }

// InMemAnalytics is the Spark collaborative-filtering model.
func InMemAnalytics() WorkloadSpec { return workload.InMemAnalytics() }

// WebSearch is the Solr search model.
func WebSearch() WorkloadSpec { return workload.WebSearch() }

// Telemetry: attach a TelemetryCollector through MachineConfig.Recorder (or
// Machine.SetRecorder) to record typed events and per-epoch metric snapshots
// in virtual time, then export them with WriteChromeTrace (Perfetto),
// WriteJSONL, or EpochTable. With no recorder attached the instrumentation
// is a single nil check per site.

// TelemetryRecorder receives events and snapshots; implemented by
// TelemetryCollector and by application-defined sinks.
type TelemetryRecorder = telemetry.Recorder

// TelemetryCollector is the bounded in-memory recorder with exporters.
type TelemetryCollector = telemetry.Collector

// TelemetryConfig bounds a collector (max events, max snapshots).
type TelemetryConfig = telemetry.Config

// TelemetryEvent is one typed, virtual-time-stamped occurrence.
type TelemetryEvent = telemetry.Event

// TelemetrySnapshot is one epoch's metric snapshot.
type TelemetrySnapshot = telemetry.Snapshot

// NewTelemetryCollector returns a collector with default bounds.
func NewTelemetryCollector() *TelemetryCollector { return telemetry.NewCollector() }

// NewTelemetryCollectorWith returns a collector with explicit bounds.
func NewTelemetryCollectorWith(cfg TelemetryConfig) *TelemetryCollector {
	return telemetry.NewCollectorWith(cfg)
}

// Stack composes a placement policy with background daemons; all tick at
// their own intervals within one run.
type Stack = sim.Stack

// Khugepaged is the THP collapse daemon: it repairs huge mappings for
// memory that starts life (or fragments into) 4KB pages, skipping pages
// Thermostat has split for sampling.
type Khugepaged = hugepaged.Daemon
